"""Cross-backend equivalence harness for the counting kernels.

The paper's utility experiments hinge on exact triangle/wedge counts and
the smooth-sensitivity quantity max-common-neighbours, so every execution
backend of :func:`repro.stats.kernels.triangle_pass` — the blocked scipy
SpGEMM and the fused numba/C kernels — must be **bit-identical** to the
pre-blocking reference oracles, for every block size and graph family.
This module is that systematic matrix, plus the contracts around backend
selection:

* ``REPRO_KERNEL_BACKEND`` naming an unavailable backend fails loudly
  with a clear :class:`ValidationError`;
* ``auto`` silently falls back to scipy when no fused backend can run;
* spectral memoization performs zero extra adjacency conversions.

Backends unavailable on the host (e.g. numba not installed) appear as
explicit skips, so the CI numba job variant proves the full matrix ran.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import complete_graph, erdos_renyi_graph, star_graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.native.counting import (
    COUNTING_KERNEL,
    FUSED_BACKENDS,
    backend_available,
)
from repro.stats.kernels import (
    KERNEL_BACKEND_ENV,
    TrianglePassResult,
    available_kernel_backends,
    float64_conversion_count,
    kernel_pass_count,
    reference_count_triangles,
    reference_max_common_neighbors,
    reference_triangles_per_node,
    resolve_kernel_backend,
    stats_context,
    triangle_pass,
)
from repro.stats.spectral import network_values, singular_values


def _backend_params() -> list:
    """One param per backend; unavailable ones become visible skips."""
    params = []
    for name in ("scipy",) + FUSED_BACKENDS:
        if name == "scipy" or backend_available(name):
            params.append(pytest.param(name))
        else:
            reason = f"{name} backend unavailable: {COUNTING_KERNEL.error(name)}"
            params.append(pytest.param(name, marks=pytest.mark.skip(reason=reason)))
    return params


BACKENDS = _backend_params()
BLOCK_SIZES = (0, 1, 7)  # auto, degenerate, small; n and > n are added per-graph

# The structured families of the ISSUE matrix.  Builders are memoized so
# the (backend x block size) matrix reuses one graph per family.
FAMILIES = {
    "empty": lambda: Graph(0),
    "isolated-only": lambda: Graph(5),
    "star": lambda: star_graph(9),
    "clique": lambda: complete_graph(8),
    "triangle-and-edge-in-isolated-sea": lambda: Graph(
        20, [(3, 7), (7, 11), (3, 11), (15, 16)]
    ),
    "er-200": lambda: erdos_renyi_graph(200, 0.05, seed=7),
    "skg-k8": lambda: sample_skg(Initiator(0.99, 0.45, 0.25), 8, seed=8),
    "skg-k10": lambda: sample_skg(Initiator(0.99, 0.45, 0.25), 10, seed=10),
    "skg-k12": lambda: sample_skg(Initiator(0.99, 0.45, 0.25), 12, seed=12),
}


@functools.lru_cache(maxsize=None)
def family_graph(name: str) -> Graph:
    return FAMILIES[name]()


@functools.lru_cache(maxsize=None)
def family_reference(name: str) -> TrianglePassResult:
    """The oracle answer, computed once per family from the references."""
    graph = family_graph(name)
    degrees = graph.degrees
    return TrianglePassResult(
        triangles=reference_count_triangles(graph),
        per_node=reference_triangles_per_node(graph),
        max_common_neighbors=reference_max_common_neighbors(graph),
        n_blocks=-1,  # not part of the equivalence contract
        wedges=int((degrees * (degrees - 1) // 2).sum()),
        tripins=int((degrees * (degrees - 1) * (degrees - 2) // 6).sum()),
    )


def assert_bit_identical(graph: Graph, expected: TrianglePassResult, backend, block_size):
    result = triangle_pass(graph, block_size, backend)
    assert result.triangles == expected.triangles
    assert result.max_common_neighbors == expected.max_common_neighbors
    assert result.per_node.dtype == np.int64
    np.testing.assert_array_equal(
        np.asarray(result.per_node), np.asarray(expected.per_node)
    )
    assert result.wedges == expected.wedges
    assert result.tripins == expected.tripins


class TestBackendFamilyMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family(self, backend, block_size, family):
        graph = family_graph(family)
        assert_bit_identical(graph, family_reference(family), backend, block_size)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_at_degenerate_block_sizes(self, backend, family):
        """Blocks of exactly n rows and of more rows than the graph has."""
        graph = family_graph(family)
        expected = family_reference(family)
        for block_size in (max(graph.n_nodes, 1), graph.n_nodes + 13):
            assert_bit_identical(graph, expected, backend, block_size)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        n=st.integers(min_value=1, max_value=40),
        p=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10**6),
        block_size=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_er(self, backend, n, p, seed, block_size):
        graph = erdos_renyi_graph(n, p, seed=seed)
        degrees = graph.degrees
        result = triangle_pass(graph, block_size, backend)
        assert result.triangles == reference_count_triangles(graph)
        assert result.max_common_neighbors == reference_max_common_neighbors(graph)
        np.testing.assert_array_equal(
            np.asarray(result.per_node), reference_triangles_per_node(graph)
        )
        assert result.wedges == int((degrees * (degrees - 1) // 2).sum())
        assert result.tripins == int((degrees * (degrees - 1) * (degrees - 2) // 6).sum())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree_pairwise(self, backend):
        """Direct backend-vs-backend check on a graph with hub structure."""
        graph = family_graph("skg-k10")
        against_scipy = triangle_pass(graph, 0, "scipy")
        result = triangle_pass(graph, 0, backend)
        assert result.triangles == against_scipy.triangles
        assert result.max_common_neighbors == against_scipy.max_common_neighbors
        np.testing.assert_array_equal(
            np.asarray(result.per_node), np.asarray(against_scipy.per_node)
        )


class TestBackendResolution:
    def test_default_resolves_to_an_available_backend(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert resolve_kernel_backend() in available_kernel_backends()

    def test_scipy_is_always_available(self):
        assert "scipy" in available_kernel_backends()
        assert resolve_kernel_backend("scipy") == "scipy"

    def test_numpy_aliases_the_reference_engine(self, monkeypatch):
        """The chain kernels call their reference 'numpy'; the counting
        resolution accepts it so one knob value drives both families."""
        assert resolve_kernel_backend("numpy") == "scipy"
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        assert resolve_kernel_backend() == "scipy"
        result = triangle_pass(family_graph("star"), 0, "numpy")
        assert_bit_identical(
            family_graph("star"), family_reference("star"), "numpy", 0
        )
        assert result.triangles == family_reference("star").triangles

    def test_environment_knob(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "scipy")
        assert resolve_kernel_backend() == "scipy"

    def test_empty_environment_value_means_auto(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "")
        assert resolve_kernel_backend() in available_kernel_backends()

    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numba")
        assert resolve_kernel_backend("scipy") == "scipy"

    def test_invalid_argument_rejected(self):
        with pytest.raises(ValidationError, match="kernel backend"):
            resolve_kernel_backend("fortran")

    def test_invalid_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "fortran")
        with pytest.raises(ValidationError, match=KERNEL_BACKEND_ENV):
            resolve_kernel_backend()

    def test_missing_numba_fails_loudly(self, monkeypatch):
        """REPRO_KERNEL_BACKEND=numba without numba is a clear, loud error."""
        monkeypatch.setitem(
            COUNTING_KERNEL.states, "numba", (None, "numba is not installed")
        )
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numba")
        with pytest.raises(ValidationError, match="numba is not installed"):
            resolve_kernel_backend()
        with pytest.raises(ValidationError, match="numba is not installed"):
            triangle_pass(family_graph("star"))

    def test_edgeless_graphs_still_validate_knobs(self):
        """The fail-loudly contract holds even when the first graph is empty."""
        with pytest.raises(ValidationError, match="kernel backend"):
            triangle_pass(Graph(5), backend="fortran")
        with pytest.raises(ValidationError):
            triangle_pass(Graph(5), n_jobs=2.5)

    def test_auto_silently_falls_back_to_scipy(self, monkeypatch):
        """With every fused backend unavailable, auto degrades without noise."""
        for name in FUSED_BACKENDS:
            monkeypatch.setitem(
                COUNTING_KERNEL.states, name, (None, f"{name} disabled")
            )
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "auto")
        assert resolve_kernel_backend() == "scipy"
        assert available_kernel_backends() == ("scipy",)
        graph = family_graph("clique")
        assert_bit_identical(graph, family_reference("clique"), None, 0)

    @pytest.mark.skipif(
        not any(backend_available(name) for name in FUSED_BACKENDS),
        reason="no fused backend available on this host",
    )
    def test_auto_prefers_fused_backends(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert resolve_kernel_backend() != "scipy"


class TestSpectralMemoization:
    def make_graph(self) -> Graph:
        # Above the dense-SVD limit so the sparse (conversion-using) path runs.
        return erdos_renyi_graph(120, 0.08, seed=5)

    def test_zero_extra_adjacency_conversions(self):
        """Repeated spectral calls trigger zero extra float64 conversions."""
        graph = self.make_graph()
        singular_values(graph, k=6)  # warm: converts int8 -> float64 -> CSC
        warm = float64_conversion_count()
        singular_values(graph, k=6)
        network_values(graph, k=6)
        singular_values(graph, k=6)
        assert float64_conversion_count() == warm

    def test_scree_and_network_values_share_one_solve(self):
        graph = self.make_graph()
        context = stats_context(graph)
        assert context.svd_cache == {}
        singular_values(graph, k=6)
        network_values(graph, k=6)
        assert list(context.svd_cache) == [6]

    def test_spectral_calls_run_no_triangle_pass(self):
        graph = self.make_graph()
        before = kernel_pass_count()
        singular_values(graph, k=6)
        network_values(graph, k=6)
        assert kernel_pass_count() == before

    def test_cached_triplets_are_read_only_and_returns_are_copies(self):
        graph = self.make_graph()
        first = singular_values(graph, k=6)
        first[:] = -1.0  # mutating the returned copy must not poison the cache
        again = singular_values(graph, k=6)
        assert np.all(again >= 0)
        values, vector = stats_context(graph).svd_cache[6]
        assert not values.flags.writeable
        assert not vector.flags.writeable

    def test_cached_triplets_own_their_memory(self):
        """The cache must hold copies, not views pinning the factor matrices."""
        sparse_path = self.make_graph()
        dense_path = erdos_renyi_graph(30, 0.2, seed=6)  # under the dense limit
        for graph in (sparse_path, dense_path):
            singular_values(graph, k=6)
            values, vector = stats_context(graph).svd_cache[6]
            assert values.base is None
            assert vector.base is None

    def test_distinct_ranks_are_cached_separately(self):
        graph = self.make_graph()
        np.testing.assert_allclose(
            singular_values(graph, k=8)[:4], singular_values(graph, k=4), rtol=1e-6
        )
        assert sorted(stats_context(graph).svd_cache) == [4, 8]
