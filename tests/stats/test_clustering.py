"""Tests for clustering coefficients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph
from repro.graphs.generators import erdos_renyi_graph, star_graph
from repro.stats.clustering import (
    average_clustering,
    clustering_by_degree,
    local_clustering,
)


class TestLocalClustering:
    def test_triangle_all_ones(self, triangle):
        np.testing.assert_array_equal(local_clustering(triangle), [1, 1, 1])

    def test_star_all_zero(self):
        np.testing.assert_array_equal(local_clustering(star_graph(5)), np.zeros(5))

    def test_square_with_diagonal(self, square_with_diagonal):
        coefficients = local_clustering(square_with_diagonal)
        np.testing.assert_allclose(coefficients, [2 / 3, 1.0, 2 / 3, 1.0])

    def test_degree_one_nodes_zero(self, path4):
        coefficients = local_clustering(path4)
        assert coefficients[0] == 0.0
        assert coefficients[3] == 0.0


class TestAverageClustering:
    def test_complete_graph_is_one(self, k5):
        assert average_clustering(k5) == pytest.approx(1.0)

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        graph = erdos_renyi_graph(100, 0.08, seed=4)
        expected = networkx.average_clustering(graph.to_networkx())
        assert average_clustering(graph) == pytest.approx(expected, rel=1e-9)

    def test_eligible_only_variant(self, path4):
        # All eligible (degree>=2) nodes on a path have zero clustering.
        assert average_clustering(path4, count_low_degree=False) == 0.0

    def test_empty_graph(self):
        assert average_clustering(Graph(0)) == 0.0

    def test_no_eligible_nodes(self):
        graph = Graph(2, [(0, 1)])
        assert average_clustering(graph, count_low_degree=False) == 0.0


class TestClusteringByDegree:
    def test_square_with_diagonal(self, square_with_diagonal):
        degrees, means = clustering_by_degree(square_with_diagonal)
        np.testing.assert_array_equal(degrees, [2, 3])
        np.testing.assert_allclose(means, [1.0, 2 / 3])

    def test_excludes_degree_below_two(self, path4):
        degrees, _means = clustering_by_degree(path4)
        assert degrees.min() >= 2

    def test_empty_when_no_eligible_nodes(self):
        degrees, means = clustering_by_degree(Graph(3, [(0, 1)]))
        assert degrees.size == 0
        assert means.size == 0
