"""The deprecated ``repro.stats._fused`` shim: warning + live aliasing.

PR 5 deprecated the shim (removal horizon: PR 7).  Until then it must
keep warning loudly and keep aliasing the *live* native registry, so any
straggling external monkeypatches still affect resolution.
"""

from __future__ import annotations

import importlib
import sys

import pytest


def fresh_import():
    sys.modules.pop("repro.stats._fused", None)
    return importlib.import_module("repro.stats._fused")


class TestFusedShimDeprecation:
    def test_import_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="repro.native.counting"):
            fresh_import()

    def test_shim_aliases_the_live_registry(self):
        from repro.native.counting import COUNTING_KERNEL, FUSED_BACKENDS

        with pytest.warns(DeprecationWarning):
            shim = fresh_import()
        assert shim._STATES is COUNTING_KERNEL.states
        assert shim.FUSED_BACKENDS == FUSED_BACKENDS

    def test_removal_note_names_pr7(self):
        """The warning and the module docstring must keep stating the
        agreed removal horizon (PR 7) until the shim is actually deleted
        — a silent horizon edit would strand external migrators."""
        with pytest.warns(DeprecationWarning, match="removed in PR 7") as caught:
            shim = fresh_import()
        assert any(
            "repro.native.counting" in str(warning.message) for warning in caught
        ), "the warning must name the replacement module"
        assert "PR 7" in shim.__doc__
        assert "repro.native.counting" in shim.__doc__

    def test_nothing_in_the_package_imports_the_shim(self):
        """The tier-1 suite must not trip the warning transitively."""
        for name in list(sys.modules):
            if name == "repro.stats._fused":
                sys.modules.pop(name)
        import repro.evaluation  # noqa: F401  (pulls in the whole stack)
        import repro.scenarios  # noqa: F401
        import repro.stats.kernels  # noqa: F401

        assert "repro.stats._fused" not in sys.modules
