"""The ``repro.stats._fused`` shim is gone — and stays gone.

PR 3 introduced the shim, PR 5 deprecated it with an explicit removal
horizon (PR 7), and PR 7 deleted it.  This guard pins the removal: the
module must not come back (a revived shim would silently re-bless the
retired import path), and the replacement surface it pointed migrators
at must keep existing.
"""

from __future__ import annotations

import importlib
import importlib.util

import pytest


class TestFusedShimRemoved:
    def test_shim_module_no_longer_exists(self):
        assert importlib.util.find_spec("repro.stats._fused") is None, (
            "repro.stats._fused was removed in PR 7; import the fused "
            "counting kernels from repro.native.counting instead"
        )

    def test_shim_import_fails(self):
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.stats._fused")

    def test_replacement_surface_exists(self):
        """The migration target named by the old deprecation warning must
        keep exporting what the shim re-exported."""
        counting = importlib.import_module("repro.native.counting")
        assert hasattr(counting, "COUNTING_KERNEL")
        assert hasattr(counting, "FUSED_BACKENDS")
