"""Tests for the Table 1 harness (reduced scale for test speed)."""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import ExperimentConfig
from repro.evaluation.table1 import Table1Row, render_table1, run_table1
from repro.kronecker.initiator import Initiator


@pytest.fixture(scope="module")
def quick_rows():
    # KronMom + Private on the smallest dataset keeps this test fast while
    # exercising the full harness path end to end.
    config = ExperimentConfig(kronfit_iterations=2)
    return run_table1(
        config=config,
        datasets=("ca-grqc",),
        methods=("KronMom", "Private"),
    )


class TestRunTable1:
    def test_row_count(self, quick_rows):
        assert len(quick_rows) == 2

    def test_row_types(self, quick_rows):
        for row in quick_rows:
            assert isinstance(row, Table1Row)
            assert isinstance(row.initiator, Initiator)

    def test_methods_in_order(self, quick_rows):
        assert [row.method for row in quick_rows] == ["KronMom", "Private"]

    def test_private_near_kronmom(self, quick_rows):
        by_method = {row.method: row.initiator for row in quick_rows}
        assert by_method["Private"].distance(by_method["KronMom"]) < 0.2

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            run_table1(datasets=("ca-grqc",), methods=("Oracle",))


class TestRenderTable1:
    def test_layout(self, quick_rows):
        text = render_table1(quick_rows)
        assert "Table 1" in text
        assert "ca-grqc" in text
        assert "KronMom (a, b, c)" in text

    def test_truth_row_only_with_synthetic(self, quick_rows):
        text = render_table1(quick_rows)
        assert "synthetic truth" not in text

    def test_missing_cell_rendered_as_dash(self):
        rows = [
            Table1Row("ca-grqc", "KronMom", Initiator(1.0, 0.5, 0.2)),
            Table1Row("as20", "Private", Initiator(1.0, 0.6, 0.0)),
        ]
        text = render_table1(rows)
        assert "-" in text
