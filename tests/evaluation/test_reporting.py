"""Tests for report rendering."""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import FigureResult, FigureSeries, GraphStatistics
from repro.evaluation.reporting import (
    render_figure,
    render_series_block,
    write_report,
)
from repro.core.nonprivate import EstimatorResult
from repro.kronecker.initiator import Initiator


def _tiny_result() -> FigureResult:
    series = {
        name: FigureSeries("Original", np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        for name in (
            "hop_plot",
            "degree_distribution",
            "scree",
            "network_value",
            "clustering",
        )
    }
    stats = GraphStatistics(series=series)
    estimate = EstimatorResult(
        method="KronMom", initiator=Initiator(0.9, 0.5, 0.1), k=4, details=None
    )
    return FigureResult(
        figure_number=1,
        dataset="test-data",
        estimates={"KronMom": estimate},
        statistics={"Original": stats},
    )


class TestRendering:
    def test_series_block_contains_label_and_pairs(self):
        text = render_series_block(_tiny_result(), "hop_plot")
        assert "Original" in text
        assert "(1, 3)" in text

    def test_full_figure_contains_all_blocks(self):
        text = render_figure(_tiny_result())
        assert "Figure 1" in text
        assert "test-data" in text
        assert "(a) Hop plot" in text
        assert "(e) Average clustering" in text
        assert "KronMom" in text

    def test_write_report_creates_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "report.txt"
        path = write_report("hello", target)
        assert path.read_text() == "hello\n"

    def test_empty_series_marked(self):
        result = _tiny_result()
        result.statistics["Original"].series["scree"] = FigureSeries(
            "Original", np.array([]), np.array([])
        )
        text = render_series_block(result, "scree")
        assert "(empty)" in text
