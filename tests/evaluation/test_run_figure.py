"""Integration test: run_figure end to end on a miniature dataset.

The real figure runs live in benchmarks/ (they take minutes).  Here the
dataset registry is monkeypatched so figure 4 resolves to a small SKG,
and the whole harness — fits, synthetic sampling, five statistics,
ensemble averaging, rendering — executes in seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.evaluation.figures as figures_module
from repro.evaluation.experiments import ExperimentConfig
from repro.evaluation.figures import STATISTIC_NAMES, run_figure
from repro.evaluation.reporting import render_figure
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg


@pytest.fixture
def small_figure(monkeypatch):
    graph = sample_skg(Initiator(0.9, 0.55, 0.2), 8, seed=0)
    monkeypatch.setattr(
        figures_module, "load_dataset", lambda name, seed=None: graph
    )
    config = ExperimentConfig(
        epsilon=1.0,
        delta=0.01,
        realizations=3,
        hop_sources=0,  # exact hop plots on this size
        svd_rank=8,
        kronfit_iterations=3,
        seed=7,
    )
    return run_figure(4, config=config, include_expected=True)


class TestRunFigureIntegration:
    def test_all_methods_fitted(self, small_figure):
        assert set(small_figure.estimates) == {"KronFit", "KronMom", "Private"}

    def test_all_curves_present(self, small_figure):
        labels = set(small_figure.statistics)
        assert "Original" in labels
        assert "Expected Private" in labels
        assert len(labels) == 7  # original + 3 single + 3 expected

    def test_every_statistic_computed(self, small_figure):
        for stats in small_figure.statistics.values():
            for name in STATISTIC_NAMES:
                assert stats[name].xs.shape == stats[name].ys.shape

    def test_hop_plot_scaled_correctly(self, small_figure):
        original = small_figure.statistics["Original"]["hop_plot"]
        assert original.ys[0] == 256  # P(0) = n for the exact plot

    def test_render_includes_plots(self, small_figure):
        text = render_figure(small_figure)
        assert "Figure 4" in text
        assert "'.' = overlap" in text  # ascii plots embedded
        assert "Expected Private" in text

    def test_render_without_plots_is_smaller(self, small_figure):
        with_plots = render_figure(small_figure, plots=True)
        without_plots = render_figure(small_figure, plots=False)
        assert len(without_plots) < len(with_plots)

    def test_invalid_figure_number(self):
        with pytest.raises(ValueError):
            run_figure(9)

    def test_unknown_method_rejected(self, monkeypatch):
        graph = sample_skg(Initiator(0.9, 0.5, 0.2), 6, seed=0)
        monkeypatch.setattr(
            figures_module, "load_dataset", lambda name, seed=None: graph
        )
        with pytest.raises(ValueError, match="unknown method"):
            run_figure(4, methods=("Oracle",))


class TestExpectedEnsembleParallelism:
    """The "Expected" ensembles are bit-identical for any worker count."""

    @pytest.fixture
    def small_graph(self, monkeypatch):
        graph = sample_skg(Initiator(0.9, 0.55, 0.2), 7, seed=0)
        monkeypatch.setattr(
            figures_module, "load_dataset", lambda name, seed=None: graph
        )
        return graph

    def _config(self, n_jobs):
        return ExperimentConfig(
            realizations=3,
            hop_sources=0,
            svd_rank=6,
            seed=7,
            n_jobs=n_jobs,
        )

    def test_expected_series_identical_across_n_jobs(self, small_graph):
        serial = run_figure(
            4,
            config=self._config(n_jobs=1),
            include_expected=True,
            methods=("KronMom",),
        )
        parallel = run_figure(
            4,
            config=self._config(n_jobs=2),
            include_expected=True,
            methods=("KronMom",),
        )
        for name in STATISTIC_NAMES:
            serial_series = serial.statistics["Expected KronMom"][name]
            parallel_series = parallel.statistics["Expected KronMom"][name]
            np.testing.assert_array_equal(serial_series.xs, parallel_series.xs)
            np.testing.assert_array_equal(serial_series.ys, parallel_series.ys)
