"""Tests for experiment configuration."""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    FIGURE_DATASETS,
    ExperimentConfig,
    default_config,
)


class TestConfig:
    def test_figure_dataset_map(self):
        assert FIGURE_DATASETS == {
            1: "ca-grqc",
            2: "as20",
            3: "ca-hepth",
            4: "synthetic-kronecker",
        }

    def test_paper_defaults(self):
        config = ExperimentConfig()
        assert config.epsilon == 0.2
        assert config.delta == 0.01

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_REALIZATIONS", "7")
        monkeypatch.setenv("REPRO_EPSILON", "0.5")
        monkeypatch.setenv("REPRO_HOP_SOURCES", "32")
        config = default_config()
        assert config.realizations == 7
        assert config.epsilon == 0.5
        assert config.hop_sources == 32

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_REALIZATIONS", "many")
        with pytest.raises(ValueError):
            default_config()

    def test_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(AttributeError):
            config.epsilon = 1.0  # type: ignore[misc]

    def test_runtime_defaults(self):
        config = ExperimentConfig()
        assert config.n_jobs == 1
        assert config.cache_dir == ""
        assert config.trial_cache is None

    def test_runtime_env_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_N_JOBS", "4")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = default_config()
        assert config.n_jobs == 4
        assert config.cache_dir == str(tmp_path)
        assert config.trial_cache == str(tmp_path)

    @pytest.mark.parametrize("name", ["REPRO_EPSILON", "REPRO_DELTA"])
    def test_bad_float_env_names_variable(self, monkeypatch, name):
        monkeypatch.setenv(name, "very private")
        with pytest.raises(ValueError, match=name):
            default_config()

    @pytest.mark.parametrize("name", ["REPRO_N_JOBS", "REPRO_REALIZATIONS"])
    def test_bad_int_env_names_variable(self, monkeypatch, name):
        monkeypatch.setenv(name, "2.5")
        with pytest.raises(ValueError, match=name):
            default_config()

    def test_float_env_accepts_scientific_notation(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA", "1e-5")
        assert default_config().delta == 1e-5

    def test_kernel_backend_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert ExperimentConfig().kernel_backend == "auto"
        assert default_config().kernel_backend == "auto"

    def test_kernel_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "scipy")
        assert default_config().kernel_backend == "scipy"

    def test_kernel_backend_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "")
        assert default_config().kernel_backend == "auto"

    def test_kernel_backend_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "fortran")
        with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
            default_config()
