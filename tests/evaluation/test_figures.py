"""Tests for figure-statistics computation and ensemble averaging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.figures import (
    FigureSeries,
    GraphStatistics,
    STATISTIC_NAMES,
    average_statistics,
    compute_graph_statistics,
)
from repro.graphs.generators import erdos_renyi_graph


class TestComputeGraphStatistics:
    @pytest.fixture(scope="class")
    def stats(self):
        graph = erdos_renyi_graph(120, 0.08, seed=0)
        return compute_graph_statistics(graph, "Test", hop_sources=None, svd_rank=8)

    def test_all_five_statistics_present(self, stats):
        for name in STATISTIC_NAMES:
            assert stats[name].label == "Test"

    def test_hop_plot_starts_at_node_count(self, stats):
        assert stats["hop_plot"].ys[0] == 120

    def test_degree_distribution_counts_positive(self, stats):
        assert np.all(stats["degree_distribution"].ys > 0)

    def test_scree_descending(self, stats):
        assert np.all(np.diff(stats["scree"].ys) <= 1e-9)

    def test_network_value_length(self, stats):
        assert stats["network_value"].ys.size == 120

    def test_clustering_degrees_at_least_two(self, stats):
        if stats["clustering"].xs.size:
            assert stats["clustering"].xs.min() >= 2


def _make_stats(label: str, hop: list, deg_xs: list, deg_ys: list) -> GraphStatistics:
    empty = FigureSeries(label, np.array([1.0]), np.array([1.0]))
    return GraphStatistics(
        series={
            "hop_plot": FigureSeries(label, np.arange(len(hop), dtype=float),
                                     np.array(hop, dtype=float)),
            "degree_distribution": FigureSeries(
                label, np.array(deg_xs, dtype=float), np.array(deg_ys, dtype=float)
            ),
            "scree": FigureSeries(label, np.array([1.0, 2.0]), np.array([3.0, 1.0])),
            "network_value": FigureSeries(
                label, np.array([1.0, 2.0]), np.array([0.5, 0.25])
            ),
            "clustering": FigureSeries(
                label, np.array(deg_xs, dtype=float), np.array(deg_ys, dtype=float)
            ),
        }
    )


class TestAverageStatistics:
    def test_hop_plot_padded_with_saturated_value(self):
        a = _make_stats("a", hop=[4, 10], deg_xs=[1], deg_ys=[2])
        b = _make_stats("b", hop=[4, 8, 12], deg_xs=[1], deg_ys=[2])
        mean = average_statistics([a, b], "Expected")
        np.testing.assert_allclose(mean["hop_plot"].ys, [4, 9, 11])

    def test_degree_distribution_union_with_zero_fill(self):
        a = _make_stats("a", hop=[1], deg_xs=[1, 2], deg_ys=[10, 4])
        b = _make_stats("b", hop=[1], deg_xs=[2, 3], deg_ys=[6, 2])
        mean = average_statistics([a, b], "Expected")
        np.testing.assert_array_equal(mean["degree_distribution"].xs, [1, 2, 3])
        np.testing.assert_allclose(mean["degree_distribution"].ys, [5, 5, 1])

    def test_clustering_averages_only_where_present(self):
        a = _make_stats("a", hop=[1], deg_xs=[2, 3], deg_ys=[0.5, 0.2])
        b = _make_stats("b", hop=[1], deg_xs=[3], deg_ys=[0.4])
        mean = average_statistics([a, b], "Expected")
        np.testing.assert_allclose(mean["clustering"].ys, [0.5, 0.3])

    def test_label_propagates(self):
        a = _make_stats("a", hop=[1], deg_xs=[1], deg_ys=[1])
        mean = average_statistics([a], "Expected KronFit")
        assert mean["scree"].label == "Expected KronFit"

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            average_statistics([], "x")
