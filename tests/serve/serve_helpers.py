"""Test helper: fast explicit serve configs (importable, not a fixture)."""

from __future__ import annotations

from repro.serve.config import ServeConfig


def make_config(**overrides) -> ServeConfig:
    """A fast, explicit config: no env fallthrough surprises in tests."""
    settings = dict(
        port=0,
        queue=4,
        timeout=20.0,
        drain=5.0,
        breaker=3,
        budget_epsilon=1.0,
        budget_delta=0.1,
        n_jobs=1,
        pool_restarts=2,
    )
    settings.update(overrides)
    return ServeConfig.resolve(**settings)
