"""Shared serve-layer fixtures: tiny configs, clean pools."""

from __future__ import annotations

import pytest

from repro.runtime import shutdown_pool


@pytest.fixture(autouse=True)
def fresh_pool():
    """Isolate every test from worker pools created by earlier tests."""
    shutdown_pool()
    yield
    shutdown_pool()
