"""The chaos acceptance test for the serve layer.

ISSUE 9's bar, verbatim: under injected worker crashes, slow requests,
and handler errors, the server returns only well-formed structured
responses (200/403/429/503/504 — never a hung or half-written socket);
the per-dataset ledger sums exactly to the spent budget with zero
over-spend under >= 16 concurrent clients; and identical requests served
cold versus from cache are bit-identical.

Everything runs over real HTTP against a real worker pool (n_jobs=2):
the ``pool_breakage`` clause kills a live worker process and the server
self-heals through it.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.server import ServeRuntime

from serve_helpers import make_config

CLIENTS = 16
ALLOWED_STATUSES = {200, 403, 429, 503, 504}
RELEASE_EPSILON = 0.1
BUDGET_EPSILON = 0.25  # grants exactly two 0.1-releases, refuses the third
RELEASE_SEEDS = (0, 1, 2, 3, 4)  # five distinct model specs compete


def raw_request(base, verb, path, payload=None, timeout=30.0):
    """Returns (status, headers, raw bytes) — bytes for bit-identity."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(base + path, data=data, method=verb)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def assert_well_formed(status: int, body: bytes) -> dict:
    parsed = json.loads(body)  # a half-written response would blow up here
    assert isinstance(parsed, dict)
    if status != 200:
        assert set(parsed["error"]) == {"code", "message", "status"}
        assert parsed["error"]["status"] == status
    return parsed


@pytest.fixture
def storm_runtime(tmp_path):
    config = make_config(
        queue=6,
        timeout=15.0,
        breaker=4,
        budget_epsilon=BUDGET_EPSILON,
        budget_delta=0.1,
        n_jobs=2,
        ledger_dir=str(tmp_path / "ledgers"),
        # Work-request admission order: #1 is the deterministic pre-storm
        # fit below (its first pool submission kills the worker); #3 and
        # #6 land somewhere inside the storm.
        faults=(
            "pool_breakage:nth=1:attempts=1;"
            "slow_request:nth=3:seconds=0.3;"
            "handler_error:nth=6"
        ),
    )
    runtime = ServeRuntime(config)
    runtime.start()
    yield runtime
    runtime.stop()


class TestChaosAcceptance:
    def test_storm(self, storm_runtime):
        base = storm_runtime.base_url
        service = storm_runtime.service

        # --- Pre-storm, deterministic: request #1 crashes its worker;
        # the pool self-heals and the request still succeeds.
        status, _h, body = raw_request(
            base, "POST", "/fit",
            {"dataset": "as20", "method": "private", "seed": 100,
             "epsilon": 0.01, "delta": 0.001},
        )
        assert status == 200
        assert_well_formed(status, body)
        assert service.breaker.snapshot()["pool_breakages"] >= 1
        assert not service.breaker.is_open

        # --- Cold reference for bit-identity (work request #2).
        identity_payload = {"dataset": "as20", "method": "kronmom"}
        status, headers, cold_bytes = raw_request(
            base, "POST", "/fit", identity_payload
        )
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"

        # --- The storm: >= 16 concurrent clients, mixed endpoints, with
        # slow_request and handler_error clauses landing mid-flight.
        observed = []  # (status, bytes) of every response, raw
        terminal = {}  # seed -> (status, bytes) of each release's outcome
        failures = []
        lock = threading.Lock()

        def record(status, body):
            with lock:
                observed.append((status, body))

        def with_retries(verb, path, payload):
            """Back off on 429/503/504 like a real client; return the
            terminal (status, bytes)."""
            for _attempt in range(80):
                status, _h, body = raw_request(base, verb, path, payload)
                record(status, body)
                if status not in (429, 503, 504):
                    return status, body
                if status == 503:
                    # Poke readiness: this drives the breaker's recovery
                    # probe if it tripped.
                    s, _hh, b = raw_request(base, "GET", "/readyz")
                    record(s, b)
                time.sleep(0.05)
            return status, body

        def client(worker: int) -> None:
            try:
                status, _h, body = raw_request(base, "GET", "/healthz")
                record(status, body)
                assert status == 200

                status, body = with_retries("POST", "/fit", identity_payload)
                assert status == 200

                status, body = with_retries(
                    "POST", "/sample",
                    {"dataset": "as20", "method": "kronmom", "count": 2},
                )
                assert status == 200

                seed = RELEASE_SEEDS[worker % len(RELEASE_SEEDS)]
                status, body = with_retries(
                    "POST", "/release",
                    {"dataset": "as20", "epsilon": RELEASE_EPSILON,
                     "delta": 0.01, "seed": seed},
                )
                assert status in (200, 403)
                with lock:
                    previous = terminal.get(seed)
                    # A spec's outcome is stable: granted stays granted
                    # (cached), refused stays refused (budget only grows).
                    if previous is not None:
                        assert previous == (status, body)
                    terminal[seed] = (status, body)
            except Exception as exc:  # pragma: no cover - the failure mode
                failures.append(f"client {worker}: {exc!r}")

        threads = [
            threading.Thread(target=client, args=(worker,))
            for worker in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads), "hung client"
        assert failures == []

        # --- 1. Only well-formed responses from the allowed status set.
        assert observed
        for status, body in observed:
            assert status in ALLOWED_STATUSES | {200}
            assert_well_formed(status, body)
        statuses = {status for status, _body in observed}
        assert statuses <= ALLOWED_STATUSES
        assert 403 in statuses  # refusals really happened under load

        # --- 2. Exact accounting: exactly two releases fit the budget,
        # the ledger sums exactly to the spend, zero over-spend.
        granted = [seed for seed, (status, _b) in terminal.items() if status == 200]
        refused = [seed for seed, (status, _b) in terminal.items() if status == 403]
        assert len(granted) == 2
        assert len(refused) == len(terminal) - 2
        accountant = service.accountants.for_dataset("as20")
        ledger = accountant.ledger
        spent_epsilon, spent_delta = accountant.spent
        assert spent_epsilon == pytest.approx(
            sum(entry.epsilon for entry in ledger), abs=0
        )
        # 0.01 from the pre-storm private fit + two granted releases.
        assert len([e for e in ledger if "epsilon=0.1" in e.label]) == 2
        assert spent_epsilon == pytest.approx(0.01 + 2 * RELEASE_EPSILON)
        assert spent_epsilon <= BUDGET_EPSILON + 1e-12
        # No duplicate charge for any model spec.
        labels = [entry.label for entry in ledger]
        assert len(labels) == len(set(labels))

        # --- 3. Bit-identity: the same request, cold vs cached, across
        # the whole storm.
        status, headers, warm_bytes = raw_request(
            base, "POST", "/fit", identity_payload
        )
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"
        assert warm_bytes == cold_bytes
        for seed in granted:
            status, _h, body = raw_request(
                base, "POST", "/release",
                {"dataset": "as20", "epsilon": RELEASE_EPSILON,
                 "delta": 0.01, "seed": seed},
            )
            assert status == 200
            assert body == terminal[seed][1]

        # --- 4. The drain leaves the exact ledger on disk.
        assert storm_runtime.stop()
        ledger_path = service.accountants.ledger_path("as20")
        payload = json.loads(ledger_path.read_text())
        assert len(payload["ledger"]) == len(ledger)
        assert sum(entry["epsilon"] for entry in payload["ledger"]) == (
            pytest.approx(spent_epsilon)
        )
