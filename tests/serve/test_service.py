"""Behavioural tests for :class:`SynthesisService` (no sockets).

Every robustness promise is exercised through ``handle()`` directly:
status mapping, caching bit-identity, budget refusal ordering, fault
injection, backpressure, and drain — the HTTP layer adds nothing but
bytes on top of this surface.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.service import SynthesisService

from serve_helpers import make_config


def render(response) -> str:
    """Exactly what the HTTP layer writes: canonical JSON."""
    return json.dumps(response.body, sort_keys=True)


def fit_request(**overrides) -> dict:
    payload = {"dataset": "as20", "method": "kronmom"}
    payload.update(overrides)
    return payload


class TestRouting:
    def test_health_and_readiness(self):
        service = SynthesisService(make_config())
        assert service.handle("GET", "/healthz").status == 200
        assert service.handle("GET", "/readyz").status == 200
        assert service.handle("GET", "/stats").status == 200

    def test_unknown_path_is_404(self):
        service = SynthesisService(make_config())
        response = service.handle("GET", "/nope")
        assert response.status == 404
        assert response.body["error"]["code"] == "not-found"

    def test_wrong_verb_is_405(self):
        service = SynthesisService(make_config())
        assert service.handle("POST", "/healthz").status == 405
        assert service.handle("GET", "/fit").status == 405

    def test_every_error_body_is_structured(self):
        service = SynthesisService(make_config())
        for verb, path, payload in [
            ("GET", "/nope", None),
            ("POST", "/fit", {"dataset": "nope"}),
            ("POST", "/fit", {"dataset": "as20", "method": "alchemy"}),
            ("POST", "/fit", [1, 2]),
        ]:
            body = service.handle(verb, path, payload).body
            assert set(body) == {"error"}
            assert set(body["error"]) == {"code", "message", "status"}


class TestFitAndCaching:
    def test_fit_returns_the_initiator(self):
        service = SynthesisService(make_config())
        response = service.handle("POST", "/fit", fit_request())
        assert response.status == 200
        model = response.body["model"]
        assert set(model["initiator"]) == {"a", "b", "c"}
        assert model["epsilon"] is None  # non-private
        assert response.body["charged"] is None
        assert response.headers["X-Repro-Cache"] == "miss"

    def test_identical_requests_are_cache_hits_and_bit_identical(self):
        service = SynthesisService(make_config())
        cold = service.handle("POST", "/fit", fit_request())
        warm = service.handle("POST", "/fit", fit_request())
        assert cold.headers["X-Repro-Cache"] == "miss"
        assert warm.headers["X-Repro-Cache"] == "hit"
        assert render(cold) == render(warm)
        stats = service.handle("GET", "/stats").body
        assert stats["responses"]["hits"] == 1
        assert stats["responses"]["misses"] == 1
        assert stats["models"]["fitted"] == 1

    def test_cache_attribution_never_leaks_into_the_body(self):
        service = SynthesisService(make_config())
        cold = service.handle("POST", "/fit", fit_request())
        warm = service.handle("POST", "/fit", fit_request())
        for response in (cold, warm):
            text = render(response)
            assert "cache" not in text.lower()
            assert "hit" not in json.loads(text)

    def test_default_seed_is_deterministic(self):
        """Omitting the seed twice resolves to the same model."""
        service = SynthesisService(make_config())
        first = service.handle("POST", "/fit", fit_request(method="private"))
        second = service.handle("POST", "/fit", fit_request(method="private"))
        assert first.body["seed"] == second.body["seed"]
        assert render(first) == render(second)
        # ... and only one budget charge was made for the shared model.
        assert service.handle("GET", "/stats").body["budget"]["as20"]["entries"] == 1

    def test_distinct_seeds_are_distinct_models(self):
        service = SynthesisService(make_config())
        one = service.handle("POST", "/fit", fit_request(seed=1))
        two = service.handle("POST", "/fit", fit_request(seed=2))
        assert one.status == two.status == 200
        assert service.handle("GET", "/stats").body["models"]["fitted"] == 2

    def test_restarted_server_reuses_fits_without_recharging(self, tmp_path):
        """Same cache + ledger dirs = a restart, not a fresh budget."""
        config = make_config(
            cache_dir=str(tmp_path / "cache"), ledger_dir=str(tmp_path / "ledgers")
        )
        first = SynthesisService(config)
        cold = first.handle("POST", "/release", {"dataset": "as20", "count": 2})
        assert cold.status == 200

        reborn = SynthesisService(config)
        warm = reborn.handle("POST", "/release", {"dataset": "as20", "count": 2})
        assert warm.status == 200
        assert warm.headers["X-Repro-Cache"] == "hit"
        assert render(cold) == render(warm)
        # The restored ledger still holds exactly one charge — serving
        # the cached response did not add another (accountants load
        # lazily, so probe the dataset explicitly).
        assert len(reborn.accountants.for_dataset("as20").ledger) == 1


class TestSampling:
    def test_sample_returns_summary_statistics(self):
        service = SynthesisService(make_config())
        response = service.handle(
            "POST", "/sample", fit_request(count=2)
        )
        assert response.status == 200
        samples = response.body["samples"]
        assert len(samples) == 2
        for row in samples:
            assert set(row) == {
                "n_nodes", "n_edges", "edges", "hairpins", "tripins", "triangles"
            }
        # Distinct samples: seeds are spawned per index.
        assert samples[0] != samples[1]

    def test_count_cap_enforced(self):
        service = SynthesisService(make_config())
        response = service.handle(
            "POST", "/sample", fit_request(count=10_000)
        )
        assert response.status == 400
        message = response.body["error"]["message"]
        assert "cap" in message
        # The structured 400 names the knob that raises the limit.
        assert "REPRO_SERVE_MAX_SAMPLES" in message

    def test_count_cap_is_a_knob(self, monkeypatch):
        from repro.serve.config import SERVE_MAX_SAMPLES_ENV

        service = SynthesisService(make_config(max_samples=2))
        assert service.handle("POST", "/sample", fit_request(count=3)).status == 400
        assert service.handle("POST", "/sample", fit_request(count=2)).status == 200

        monkeypatch.setenv(SERVE_MAX_SAMPLES_ENV, "1")
        service = SynthesisService(make_config())
        response = service.handle("POST", "/sample", fit_request(count=2))
        assert response.status == 400
        assert "cap of 1" in response.body["error"]["message"]

    def test_release_requires_a_private_method(self):
        service = SynthesisService(make_config())
        response = service.handle(
            "POST", "/release", {"dataset": "as20", "method": "kronmom"}
        )
        assert response.status == 400

    def test_release_reports_the_charge(self):
        service = SynthesisService(make_config())
        response = service.handle(
            "POST", "/release",
            {"dataset": "as20", "epsilon": 0.3, "delta": 0.02, "count": 1},
        )
        assert response.status == 200
        assert response.body["charged"] == {"epsilon": 0.3, "delta": 0.02}
        budget = service.handle("GET", "/stats").body["budget"]["as20"]
        assert budget["spent"] == {"epsilon": 0.3, "delta": 0.02}


class TestValidation:
    def test_unknown_dataset_is_400_and_charges_nothing(self):
        service = SynthesisService(make_config())
        response = service.handle(
            "POST", "/release", {"dataset": "nope", "epsilon": 0.5}
        )
        assert response.status == 400
        assert service.handle("GET", "/stats").body["budget"] == {}

    def test_unknown_fields_rejected(self):
        service = SynthesisService(make_config())
        response = service.handle("POST", "/fit", fit_request(sneaky=1))
        assert response.status == 400
        assert "sneaky" in response.body["error"]["message"]

    def test_epsilon_on_nonprivate_method_rejected(self):
        service = SynthesisService(make_config())
        response = service.handle(
            "POST", "/fit", fit_request(method="kronmom", epsilon=0.5)
        )
        assert response.status == 400

    def test_delta_on_dpdegree_rejected(self):
        service = SynthesisService(make_config())
        response = service.handle(
            "POST", "/fit",
            {"dataset": "as20", "method": "dpdegree", "epsilon": 0.3, "delta": 0.1},
        )
        assert response.status == 400

    def test_bad_scalars_rejected(self):
        service = SynthesisService(make_config())
        for payload in [
            fit_request(seed=-1),
            fit_request(seed=True),
            fit_request(method="private", epsilon="lots"),
            {"dataset": 7},
            fit_request(params={"nested": {"x": 1}}),
        ]:
            assert service.handle("POST", "/fit", payload).status == 400


class TestBudgetRefusal:
    def test_exhaustion_is_403_with_the_refusing_charge(self):
        service = SynthesisService(make_config(budget_epsilon=0.5))
        ok = service.handle(
            "POST", "/release", {"dataset": "as20", "epsilon": 0.4, "seed": 1}
        )
        assert ok.status == 200
        refused = service.handle(
            "POST", "/release", {"dataset": "as20", "epsilon": 0.4, "seed": 2}
        )
        assert refused.status == 403
        assert refused.body["error"]["code"] == "budget-exhausted"
        # The refusal changed nothing: the ledger still has one entry and
        # the granted model still serves.
        assert service.handle("GET", "/stats").body["budget"]["as20"]["entries"] == 1
        again = service.handle(
            "POST", "/release", {"dataset": "as20", "epsilon": 0.4, "seed": 1}
        )
        assert again.status == 200
        assert again.headers["X-Repro-Cache"] == "hit"


class TestInjectedFaults:
    def test_slow_request_times_out_with_504(self):
        service = SynthesisService(
            make_config(timeout=0.2, faults="slow_request:nth=1:seconds=5")
        )
        response = service.handle("POST", "/fit", fit_request())
        assert response.status == 504
        assert response.body["error"]["code"] == "deadline"
        # The next (unfaulted) request succeeds.
        assert service.handle("POST", "/fit", fit_request()).status == 200

    def test_handler_error_is_a_structured_503(self):
        service = SynthesisService(make_config(faults="handler_error:nth=1"))
        response = service.handle("POST", "/fit", fit_request())
        assert response.status == 503
        assert response.body["error"]["code"] == "work-failed"
        assert service.handle("POST", "/fit", fit_request()).status == 200


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self):
        service = SynthesisService(make_config(queue=2))
        # Occupy both admission slots as if two requests were in flight.
        assert service.gate.try_enter()
        assert service.gate.try_enter()
        try:
            response = service.handle("POST", "/fit", fit_request())
            assert response.status == 429
            assert response.body["error"]["code"] == "queue-full"
            assert int(response.headers["Retry-After"]) >= 1
        finally:
            service.gate.leave()
            service.gate.leave()
        assert service.handle("POST", "/fit", fit_request()).status == 200

    def test_probes_do_not_consume_admission_slots(self):
        service = SynthesisService(make_config(queue=1))
        assert service.gate.try_enter()
        try:
            assert service.handle("GET", "/healthz").status == 200
            assert service.handle("GET", "/stats").status == 200
        finally:
            service.gate.leave()


class TestDrain:
    def test_draining_refuses_work_and_readiness(self, tmp_path):
        service = SynthesisService(
            make_config(ledger_dir=str(tmp_path / "ledgers"))
        )
        granted = service.handle(
            "POST", "/release", {"dataset": "as20", "epsilon": 0.3}
        )
        assert granted.status == 200
        service.begin_drain()
        assert service.handle("GET", "/readyz").status == 503
        work = service.handle("POST", "/fit", fit_request())
        assert work.status == 503
        assert work.body["error"]["code"] == "draining"
        # Liveness stays green while draining.
        assert service.handle("GET", "/healthz").status == 200
        assert service.drain(deadline=2.0)
        # The flush is the drain's final act: the ledger is on disk.
        ledger = json.loads(
            (tmp_path / "ledgers" / "as20.json").read_text()
        )
        assert len(ledger["ledger"]) == 1


class TestBreaker:
    def test_open_breaker_fails_fast_and_readyz_probes_closed(self):
        service = SynthesisService(make_config(breaker=2))
        service.breaker.record_breakage()
        service.breaker.record_breakage()
        assert service.breaker.is_open
        response = service.handle("POST", "/fit", fit_request())
        assert response.status == 503
        assert response.body["error"]["code"] == "breaker-open"
        # /readyz drives the recovery probe; n_jobs=1 probes in-process
        # and succeeds immediately.
        assert service.handle("GET", "/readyz").status == 200
        assert not service.breaker.is_open
        assert service.handle("POST", "/fit", fit_request()).status == 200
