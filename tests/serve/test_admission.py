"""Tests for the serve concurrency primitives."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.admission import AdmissionGate, CircuitBreaker, KeyedLocks


class TestAdmissionGate:
    def test_admits_up_to_capacity_then_rejects(self):
        gate = AdmissionGate(2)
        assert gate.try_enter()
        assert gate.try_enter()
        assert not gate.try_enter()
        gate.leave()
        assert gate.try_enter()
        snapshot = gate.snapshot()
        assert snapshot["limit"] == 2
        assert snapshot["in_flight"] == 2
        assert snapshot["peak_in_flight"] == 2
        assert snapshot["rejected"] == 1

    def test_unmatched_leave_raises(self):
        gate = AdmissionGate(1)
        with pytest.raises(RuntimeError):
            gate.leave()

    def test_wait_idle_times_out_with_work_in_flight(self):
        gate = AdmissionGate(1)
        gate.try_enter()
        start = time.monotonic()
        assert not gate.wait_idle(0.05)
        assert time.monotonic() - start >= 0.05

    def test_wait_idle_wakes_on_last_leave(self):
        gate = AdmissionGate(2)
        gate.try_enter()

        def leaver():
            time.sleep(0.05)
            gate.leave()

        thread = threading.Thread(target=leaver)
        thread.start()
        assert gate.wait_idle(5.0)
        thread.join()
        assert gate.in_flight == 0

    def test_rejections_do_not_consume_slots(self):
        gate = AdmissionGate(1)
        gate.try_enter()
        for _ in range(5):
            assert not gate.try_enter()
        gate.leave()
        assert gate.in_flight == 0
        assert gate.snapshot()["rejected"] == 5


class TestCircuitBreaker:
    def test_trips_after_consecutive_breakages(self):
        breaker = CircuitBreaker(3)
        breaker.record_breakage()
        breaker.record_breakage()
        assert not breaker.is_open
        breaker.record_breakage()
        assert breaker.is_open
        assert breaker.snapshot()["trips"] == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(2)
        breaker.record_breakage()
        breaker.record_success()
        breaker.record_breakage()
        assert not breaker.is_open

    def test_probe_is_single_flight(self):
        breaker = CircuitBreaker(1)
        breaker.record_breakage()
        assert breaker.is_open
        assert breaker.begin_probe()
        assert not breaker.begin_probe()  # one at a time
        assert breaker.state == "probing"
        breaker.end_probe(success=False)
        assert breaker.is_open
        assert breaker.begin_probe()  # can try again
        breaker.end_probe(success=True)
        assert not breaker.is_open
        assert breaker.state == "closed"

    def test_probe_refused_while_closed(self):
        breaker = CircuitBreaker(1)
        assert not breaker.begin_probe()


class TestKeyedLocks:
    def test_serializes_per_key(self):
        locks = KeyedLocks()
        order = []

        def worker(tag):
            with locks.lock("model-a"):
                order.append(f"{tag}-in")
                time.sleep(0.02)
                order.append(f"{tag}-out")

        threads = [threading.Thread(target=worker, args=(t,)) for t in "xy"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Strict nesting: whoever entered first left before the other
        # entered.
        assert order[0].endswith("-in") and order[1] == order[0].replace("-in", "-out")

    def test_distinct_keys_run_concurrently(self):
        locks = KeyedLocks()
        started = threading.Barrier(2, timeout=5.0)

        def worker(key):
            with locks.lock(key):
                started.wait()  # both inside their locks at once

        threads = [
            threading.Thread(target=worker, args=(key,)) for key in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_table_empties_when_idle(self):
        locks = KeyedLocks()
        with locks.lock("k"):
            assert len(locks) == 1
        assert len(locks) == 0
