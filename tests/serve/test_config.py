"""Tests for the ``REPRO_SERVE_*`` knob surface."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.serve.config import (
    DEFAULT_BREAKER,
    DEFAULT_BUDGET_DELTA,
    DEFAULT_BUDGET_EPSILON,
    DEFAULT_DRAIN,
    DEFAULT_MAX_SAMPLES,
    DEFAULT_QUEUE,
    DEFAULT_TIMEOUT,
    SERVE_BREAKER_ENV,
    SERVE_BUDGET_EPSILON_ENV,
    SERVE_DRAIN_ENV,
    SERVE_LEDGER_DIR_ENV,
    SERVE_MAX_SAMPLES_ENV,
    SERVE_QUEUE_ENV,
    SERVE_TIMEOUT_ENV,
    ServeConfig,
    resolve_serve_breaker,
    resolve_serve_budget_epsilon,
    resolve_serve_drain,
    resolve_serve_max_samples,
    resolve_serve_queue,
    resolve_serve_timeout,
)


class TestKnobResolution:
    def test_defaults(self, monkeypatch):
        for name in (SERVE_QUEUE_ENV, SERVE_TIMEOUT_ENV, SERVE_DRAIN_ENV,
                     SERVE_BREAKER_ENV, SERVE_MAX_SAMPLES_ENV):
            monkeypatch.delenv(name, raising=False)
        assert resolve_serve_queue() == DEFAULT_QUEUE
        assert resolve_serve_timeout() == DEFAULT_TIMEOUT
        assert resolve_serve_drain() == DEFAULT_DRAIN
        assert resolve_serve_breaker() == DEFAULT_BREAKER
        assert resolve_serve_budget_epsilon() == DEFAULT_BUDGET_EPSILON
        assert resolve_serve_max_samples() == DEFAULT_MAX_SAMPLES

    def test_environment_knobs(self, monkeypatch):
        monkeypatch.setenv(SERVE_QUEUE_ENV, "32")
        monkeypatch.setenv(SERVE_TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(SERVE_BREAKER_ENV, "7")
        monkeypatch.setenv(SERVE_BUDGET_EPSILON_ENV, "3.5")
        assert resolve_serve_queue() == 32
        assert resolve_serve_timeout() == 2.5
        assert resolve_serve_breaker() == 7
        assert resolve_serve_budget_epsilon() == 3.5

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(SERVE_QUEUE_ENV, "32")
        assert resolve_serve_queue(2) == 2

    def test_empty_environment_means_default(self, monkeypatch):
        monkeypatch.setenv(SERVE_TIMEOUT_ENV, "")
        assert resolve_serve_timeout() == DEFAULT_TIMEOUT

    def test_malformed_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(SERVE_QUEUE_ENV, "many")
        with pytest.raises(ValidationError, match=SERVE_QUEUE_ENV):
            resolve_serve_queue()
        monkeypatch.setenv(SERVE_TIMEOUT_ENV, "soon")
        with pytest.raises(ValidationError, match=SERVE_TIMEOUT_ENV):
            resolve_serve_timeout()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValidationError):
            resolve_serve_queue(0)
        with pytest.raises(ValidationError):
            resolve_serve_timeout(0.0)
        with pytest.raises(ValidationError):
            resolve_serve_drain(-1.0)
        with pytest.raises(ValidationError):
            resolve_serve_breaker(0)
        with pytest.raises(ValidationError):
            resolve_serve_max_samples(0)

    def test_max_samples_environment_knob(self, monkeypatch):
        monkeypatch.setenv(SERVE_MAX_SAMPLES_ENV, "200")
        assert resolve_serve_max_samples() == 200
        assert resolve_serve_max_samples(16) == 16
        monkeypatch.setenv(SERVE_MAX_SAMPLES_ENV, "lots")
        with pytest.raises(ValidationError, match=SERVE_MAX_SAMPLES_ENV):
            resolve_serve_max_samples()
        monkeypatch.setenv(SERVE_MAX_SAMPLES_ENV, "0")
        with pytest.raises(ValidationError):
            resolve_serve_max_samples()


class TestServeConfig:
    def test_resolve_is_explicit_and_validated(self):
        config = ServeConfig.resolve(
            port=0, queue=2, timeout=1.5, drain=2.0, breaker=5,
            budget_epsilon=0.7, budget_delta=0.05, n_jobs=1,
        )
        assert config.port == 0
        assert config.queue_limit == 2
        assert config.timeout == 1.5
        assert config.drain_deadline == 2.0
        assert config.breaker_threshold == 5
        assert config.budget_epsilon == 0.7
        assert config.budget_delta == 0.05
        assert config.n_jobs == 1

    def test_negative_port_rejected(self):
        with pytest.raises(ValidationError):
            ServeConfig.resolve(port=-1)

    def test_ledger_dir_environment_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SERVE_LEDGER_DIR_ENV, str(tmp_path / "ledgers"))
        config = ServeConfig.resolve(port=0, n_jobs=1)
        assert config.ledger_dir == str(tmp_path / "ledgers")
        assert ServeConfig.resolve(port=0, n_jobs=1, ledger_dir="x").ledger_dir == "x"

    def test_cache_dir_environment_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        config = ServeConfig.resolve(port=0, n_jobs=1)
        assert config.cache_dir == str(tmp_path / "cache")

    def test_default_budget_delta(self):
        assert ServeConfig.resolve(port=0, n_jobs=1).budget_delta == (
            DEFAULT_BUDGET_DELTA
        )

    def test_max_samples_resolution(self, monkeypatch):
        monkeypatch.delenv(SERVE_MAX_SAMPLES_ENV, raising=False)
        assert ServeConfig.resolve(port=0, n_jobs=1).max_samples == (
            DEFAULT_MAX_SAMPLES
        )
        monkeypatch.setenv(SERVE_MAX_SAMPLES_ENV, "3")
        assert ServeConfig.resolve(port=0, n_jobs=1).max_samples == 3
        assert ServeConfig.resolve(port=0, n_jobs=1, max_samples=9).max_samples == 9

    def test_frozen(self):
        config = ServeConfig.resolve(port=0, n_jobs=1)
        with pytest.raises(AttributeError):
            config.port = 9
