"""Tests for the HTTP shell: real sockets, real signals, real drain."""

from __future__ import annotations

import json
import os
import signal
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.server import ServeRuntime

from serve_helpers import make_config


def http(base: str, verb: str, path: str, payload=None, timeout=30.0):
    """One request; returns (status, headers, parsed body)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(base + path, data=data, method=verb)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


@pytest.fixture
def runtime():
    instance = ServeRuntime(make_config())
    instance.start()
    yield instance
    instance.stop()


class TestTransport:
    def test_ephemeral_port_is_reported(self, runtime):
        host, port = runtime.address
        assert host == "127.0.0.1"
        assert port > 0

    def test_health_over_the_wire(self, runtime):
        status, _headers, body = http(runtime.base_url, "GET", "/healthz")
        assert (status, body) == (200, {"status": "ok"})

    def test_fit_and_cache_header_over_the_wire(self, runtime):
        payload = {"dataset": "as20", "method": "kronmom"}
        status, headers, body = http(runtime.base_url, "POST", "/fit", payload)
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"
        status, headers, again = http(runtime.base_url, "POST", "/fit", payload)
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"
        assert again == body

    def test_malformed_json_is_a_structured_400(self, runtime):
        request = urllib.request.Request(
            runtime.base_url + "/fit", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["code"] == "bad-json"

    def test_budget_refusal_over_the_wire(self, runtime):
        status, _headers, body = http(
            runtime.base_url, "POST", "/release",
            {"dataset": "as20", "epsilon": 99.0, "delta": 0.01},
        )
        assert status == 403
        assert body["error"]["code"] == "budget-exhausted"


class TestLifecycle:
    def test_stop_is_idempotent_and_drains(self, tmp_path):
        runtime = ServeRuntime(
            make_config(ledger_dir=str(tmp_path / "ledgers"))
        )
        runtime.start()
        status, _h, _b = http(
            runtime.base_url, "POST", "/release", {"dataset": "as20"}
        )
        assert status == 200
        assert runtime.stop()
        assert runtime.stop()  # second call: waits, no error
        assert (tmp_path / "ledgers" / "as20.json").exists()
        # The socket is really closed.
        with pytest.raises(OSError):
            http(runtime.base_url, "GET", "/healthz", timeout=2.0)

    def test_sigterm_triggers_graceful_drain(self, tmp_path):
        """A real SIGTERM to this process drains the runtime cleanly."""
        runtime = ServeRuntime(
            make_config(ledger_dir=str(tmp_path / "ledgers"))
        )
        previous_term = signal.getsignal(signal.SIGTERM)
        previous_int = signal.getsignal(signal.SIGINT)
        try:
            runtime.install_signal_handlers()
            runtime.start()
            status, _h, _b = http(
                runtime.base_url, "POST", "/release", {"dataset": "as20"}
            )
            assert status == 200
            os.kill(os.getpid(), signal.SIGTERM)
            assert runtime.stopped.wait(timeout=15.0)
            assert (tmp_path / "ledgers" / "as20.json").exists()
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)

    def test_draining_runtime_rejects_work_but_answers(self):
        runtime = ServeRuntime(make_config())
        runtime.start()
        try:
            runtime.service.begin_drain()
            status, _h, body = http(
                runtime.base_url, "POST", "/fit", {"dataset": "as20"}
            )
            assert status == 503
            assert body["error"]["code"] == "draining"
            status, _h, _b = http(runtime.base_url, "GET", "/readyz")
            assert status == 503
            status, _h, _b = http(runtime.base_url, "GET", "/healthz")
            assert status == 200
        finally:
            runtime.stop()


class TestConcurrentClients:
    def test_parallel_identical_requests_fit_once(self, runtime):
        payload = {"dataset": "as20", "method": "private", "seed": 11}
        results = []

        def client():
            results.append(http(runtime.base_url, "POST", "/fit", payload))

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses = [status for status, _h, _b in results]
        bodies = [json.dumps(body, sort_keys=True) for _s, _h, body in results]
        # Backpressure may reject some, but granted responses are all
        # bit-identical and the single-flight fit charged exactly once.
        assert set(statuses) <= {200, 429}
        assert len(set(body for status, body in zip(statuses, bodies) if status == 200)) == 1
        assert runtime.service.accountants.for_dataset("as20").spent[0] == (
            pytest.approx(0.2)
        )
        stats = runtime.service.stats()
        assert stats["models"]["fitted"] == 1
