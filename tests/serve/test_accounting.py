"""Tests for the per-dataset accountant registry and ledger persistence."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import PrivacyBudgetError
from repro.serve.accounting import AccountantRegistry


class TestCharging:
    def test_datasets_have_independent_budgets(self):
        registry = AccountantRegistry(epsilon=0.5, delta=0.1)
        registry.charge("as20", "fit", 0.5, 0.0)
        # as20 is now exhausted; ca-grqc is untouched.
        with pytest.raises(PrivacyBudgetError):
            registry.charge("as20", "fit2", 0.1, 0.0)
        registry.charge("ca-grqc", "fit", 0.5, 0.0)
        snapshot = registry.snapshot()
        assert snapshot["as20"]["remaining"]["epsilon"] == 0.0
        assert snapshot["ca-grqc"]["spent"]["epsilon"] == 0.5

    def test_refusal_happens_before_recording(self):
        registry = AccountantRegistry(epsilon=0.3, delta=0.0)
        with pytest.raises(PrivacyBudgetError):
            registry.charge("as20", "too-big", 0.4, 0.0)
        assert registry.snapshot()["as20"]["entries"] == 0

    def test_concurrent_charges_never_overspend(self):
        registry = AccountantRegistry(epsilon=1.0, delta=1.0)
        granted = []
        barrier = threading.Barrier(16)

        def spender(worker):
            barrier.wait()
            for attempt in range(10):
                try:
                    registry.charge("as20", f"w{worker}-{attempt}", 0.01, 0.0)
                    granted.append(1)
                except PrivacyBudgetError:
                    pass

        threads = [
            threading.Thread(target=spender, args=(w,)) for w in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report = registry.snapshot()["as20"]
        assert len(granted) == 100  # exactly 1.0 / 0.01 grants
        assert report["entries"] == 100
        assert report["spent"]["epsilon"] == pytest.approx(1.0)
        assert report["spent"]["epsilon"] <= 1.0 + 1e-9


class TestPersistence:
    def test_charge_persists_and_restores(self, tmp_path):
        registry = AccountantRegistry(epsilon=1.0, delta=0.1, ledger_dir=tmp_path)
        registry.charge("as20", "private fit", 0.4, 0.01)
        path = registry.ledger_path("as20")
        payload = json.loads(path.read_text())
        assert payload["ledger"][0]["label"] == "private fit"

        # A fresh process (new registry, same directory) remembers.
        reborn = AccountantRegistry(epsilon=1.0, delta=0.1, ledger_dir=tmp_path)
        report = reborn.snapshot()  # nothing loaded yet: lazy
        assert report == {}
        accountant = reborn.for_dataset("as20")
        assert accountant.spent == (0.4, 0.01)
        with pytest.raises(PrivacyBudgetError):
            reborn.charge("as20", "too much", 0.7, 0.0)

    def test_configured_budget_wins_over_persisted(self, tmp_path):
        first = AccountantRegistry(epsilon=1.0, delta=0.1, ledger_dir=tmp_path)
        first.charge("as20", "spend", 0.6, 0.0)
        # The budget shrank below what is already spent: remaining floors
        # at zero and every further charge is refused — the spend itself
        # is never erased.
        shrunk = AccountantRegistry(epsilon=0.5, delta=0.1, ledger_dir=tmp_path)
        accountant = shrunk.for_dataset("as20")
        assert accountant.epsilon == 0.5
        assert accountant.spent == (0.6, 0.0)
        assert accountant.remaining == (0.0, 0.1)
        with pytest.raises(PrivacyBudgetError):
            shrunk.charge("as20", "more", 0.01, 0.0)

    def test_refused_charge_does_not_touch_the_ledger_file(self, tmp_path):
        registry = AccountantRegistry(epsilon=0.5, delta=0.0, ledger_dir=tmp_path)
        registry.charge("as20", "ok", 0.5, 0.0)
        before = registry.ledger_path("as20").read_text()
        with pytest.raises(PrivacyBudgetError):
            registry.charge("as20", "refused", 0.1, 0.0)
        assert registry.ledger_path("as20").read_text() == before

    def test_flush_writes_every_dataset(self, tmp_path):
        registry = AccountantRegistry(epsilon=1.0, delta=0.1, ledger_dir=tmp_path)
        registry.charge("as20", "a", 0.1, 0.0)
        registry.charge("ca-grqc", "b", 0.2, 0.0)
        assert registry.flush() == 2
        assert registry.ledger_path("as20").exists()
        assert registry.ledger_path("ca-grqc").exists()

    def test_memory_only_mode_flushes_nothing(self):
        registry = AccountantRegistry(epsilon=1.0, delta=0.1)
        registry.charge("as20", "a", 0.1, 0.0)
        assert registry.ledger_path("as20") is None
        assert registry.flush() == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        registry = AccountantRegistry(epsilon=1.0, delta=0.1, ledger_dir=tmp_path)
        for index in range(5):
            registry.charge("as20", f"c{index}", 0.1, 0.0)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []
