"""Run the library's docstring examples as tests.

Public-API docstrings carry runnable examples; executing them keeps the
documentation honest.  Slow examples (KronFit's class docstring) are
excluded by module selection, not by skipping, so everything listed here
runs on every test invocation.
"""

from __future__ import annotations

import doctest

import pytest

import repro.graphs.graph
import repro.graphs.io
import repro.kronecker.initiator
import repro.privacy.accountant
import repro.privacy.k_edge
import repro.runtime.cache
import repro.runtime.hashing
import repro.utils.rng
import repro.utils.tables

MODULES = [
    repro.graphs.graph,
    repro.graphs.io,
    repro.kronecker.initiator,
    repro.privacy.accountant,
    repro.privacy.k_edge,
    repro.runtime.cache,
    repro.runtime.hashing,
    repro.utils.rng,
    repro.utils.tables,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
