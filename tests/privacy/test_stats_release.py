"""Tests for the combined matching-statistics release (Algorithm 1, steps 1-5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy.stats_release import release_matching_statistics
from repro.stats.counts import matching_statistics


class TestComposition:
    def test_ledger_totals(self, er_graph):
        release = release_matching_statistics(er_graph, 0.2, 0.01, seed=0)
        assert release.epsilon == pytest.approx(0.2)
        assert release.delta == pytest.approx(0.01)
        assert len(release.accountant.ledger) == 2

    def test_even_split_by_default(self, er_graph):
        release = release_matching_statistics(er_graph, 0.2, 0.01, seed=0)
        entries = release.accountant.ledger
        assert entries[0].epsilon == pytest.approx(0.1)
        assert entries[1].epsilon == pytest.approx(0.1)
        assert entries[0].delta == 0.0
        assert entries[1].delta == pytest.approx(0.01)

    def test_custom_degree_share(self, er_graph):
        release = release_matching_statistics(
            er_graph, 1.0, 0.01, degree_share=0.75, seed=0
        )
        entries = release.accountant.ledger
        assert entries[0].epsilon == pytest.approx(0.75)
        assert entries[1].epsilon == pytest.approx(0.25)

    def test_degenerate_share_rejected(self, er_graph):
        with pytest.raises(ValueError):
            release_matching_statistics(er_graph, 1.0, 0.01, degree_share=1.0, seed=0)


class TestAccuracy:
    def test_converges_to_exact_statistics_at_high_epsilon(self, er_graph):
        exact = matching_statistics(er_graph)
        release = release_matching_statistics(er_graph, 10_000.0, 0.0001, seed=1)
        noisy = release.statistics
        assert noisy.edges == pytest.approx(exact.edges, rel=0.01)
        assert noisy.hairpins == pytest.approx(exact.hairpins, rel=0.02)
        assert noisy.tripins == pytest.approx(exact.tripins, rel=0.03)
        assert noisy.triangles == pytest.approx(exact.triangles, rel=0.05, abs=2.0)

    def test_edges_unbiased_at_moderate_epsilon(self, er_graph):
        exact = matching_statistics(er_graph)
        estimates = [
            release_matching_statistics(er_graph, 1.0, 0.01, seed=s).statistics.edges
            for s in range(50)
        ]
        assert np.mean(estimates) == pytest.approx(exact.edges, rel=0.05)

    def test_deterministic_given_seed(self, er_graph):
        a = release_matching_statistics(er_graph, 0.2, 0.01, seed=3)
        b = release_matching_statistics(er_graph, 0.2, 0.01, seed=3)
        assert a.statistics == b.statistics

    def test_sub_releases_exposed(self, er_graph):
        release = release_matching_statistics(er_graph, 0.2, 0.01, seed=0)
        assert release.degree_release.degrees.shape == (er_graph.n_nodes,)
        assert release.triangle_release.noise_scale > 0
