"""Tests for privacy-budget accounting."""

from __future__ import annotations

import pytest

from repro.errors import PrivacyBudgetError, ValidationError
from repro.privacy.accountant import PrivacyAccountant


class TestCharging:
    def test_single_charge(self):
        accountant = PrivacyAccountant(1.0, 0.1)
        accountant.charge("degrees", 0.4, 0.0)
        assert accountant.spent == (0.4, 0.0)
        assert accountant.remaining == (pytest.approx(0.6), pytest.approx(0.1))

    def test_sequential_composition_adds(self):
        accountant = PrivacyAccountant(1.0, 0.1)
        accountant.charge("a", 0.3, 0.02)
        accountant.charge("b", 0.3, 0.02)
        epsilon, delta = accountant.spent
        assert epsilon == pytest.approx(0.6)
        assert delta == pytest.approx(0.04)

    def test_exact_budget_allowed(self):
        accountant = PrivacyAccountant(0.2, 0.01)
        accountant.charge("x", 0.1, 0.0)
        accountant.charge("y", 0.1, 0.01)  # exactly exhausts both

    def test_epsilon_overspend_rejected(self):
        accountant = PrivacyAccountant(0.5)
        accountant.charge("x", 0.4)
        with pytest.raises(PrivacyBudgetError, match="epsilon"):
            accountant.charge("y", 0.2)

    def test_delta_overspend_rejected(self):
        accountant = PrivacyAccountant(1.0, 0.01)
        with pytest.raises(PrivacyBudgetError, match="delta"):
            accountant.charge("x", 0.1, 0.02)

    def test_failed_charge_not_recorded(self):
        accountant = PrivacyAccountant(0.5)
        with pytest.raises(PrivacyBudgetError):
            accountant.charge("too big", 1.0)
        assert accountant.spent == (0.0, 0.0)
        assert len(accountant.ledger) == 0

    def test_negative_charge_rejected(self):
        accountant = PrivacyAccountant(1.0)
        with pytest.raises(ValidationError):
            accountant.charge("x", -0.1)

    def test_many_small_charges_accumulate(self):
        accountant = PrivacyAccountant(1.0)
        for index in range(10):
            accountant.charge(f"q{index}", 0.1)
        with pytest.raises(PrivacyBudgetError):
            accountant.charge("one too many", 0.1)


class TestIntrospection:
    def test_ledger_order(self):
        accountant = PrivacyAccountant(1.0, 0.1)
        accountant.charge("first", 0.1)
        accountant.charge("second", 0.2, 0.05)
        labels = [entry.label for entry in accountant.ledger]
        assert labels == ["first", "second"]

    def test_describe_mentions_entries(self):
        accountant = PrivacyAccountant(0.2, 0.01)
        accountant.charge("degrees", 0.1)
        text = accountant.describe()
        assert "degrees" in text
        assert "epsilon=0.2" in text

    def test_repr(self):
        accountant = PrivacyAccountant(0.2, 0.01)
        assert "entries=0" in repr(accountant)

    def test_remaining_floors_at_zero(self):
        accountant = PrivacyAccountant(0.1)
        accountant.charge("all", 0.1)
        assert accountant.remaining == (0.0, 0.0)
