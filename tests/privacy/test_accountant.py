"""Tests for privacy-budget accounting."""

from __future__ import annotations

import pytest

from repro.errors import PrivacyBudgetError, ValidationError
from repro.privacy.accountant import PrivacyAccountant


class TestCharging:
    def test_single_charge(self):
        accountant = PrivacyAccountant(1.0, 0.1)
        accountant.charge("degrees", 0.4, 0.0)
        assert accountant.spent == (0.4, 0.0)
        assert accountant.remaining == (pytest.approx(0.6), pytest.approx(0.1))

    def test_sequential_composition_adds(self):
        accountant = PrivacyAccountant(1.0, 0.1)
        accountant.charge("a", 0.3, 0.02)
        accountant.charge("b", 0.3, 0.02)
        epsilon, delta = accountant.spent
        assert epsilon == pytest.approx(0.6)
        assert delta == pytest.approx(0.04)

    def test_exact_budget_allowed(self):
        accountant = PrivacyAccountant(0.2, 0.01)
        accountant.charge("x", 0.1, 0.0)
        accountant.charge("y", 0.1, 0.01)  # exactly exhausts both

    def test_epsilon_overspend_rejected(self):
        accountant = PrivacyAccountant(0.5)
        accountant.charge("x", 0.4)
        with pytest.raises(PrivacyBudgetError, match="epsilon"):
            accountant.charge("y", 0.2)

    def test_delta_overspend_rejected(self):
        accountant = PrivacyAccountant(1.0, 0.01)
        with pytest.raises(PrivacyBudgetError, match="delta"):
            accountant.charge("x", 0.1, 0.02)

    def test_failed_charge_not_recorded(self):
        accountant = PrivacyAccountant(0.5)
        with pytest.raises(PrivacyBudgetError):
            accountant.charge("too big", 1.0)
        assert accountant.spent == (0.0, 0.0)
        assert len(accountant.ledger) == 0

    def test_negative_charge_rejected(self):
        accountant = PrivacyAccountant(1.0)
        with pytest.raises(ValidationError):
            accountant.charge("x", -0.1)

    def test_many_small_charges_accumulate(self):
        accountant = PrivacyAccountant(1.0)
        for index in range(10):
            accountant.charge(f"q{index}", 0.1)
        with pytest.raises(PrivacyBudgetError):
            accountant.charge("one too many", 0.1)


class TestIntrospection:
    def test_ledger_order(self):
        accountant = PrivacyAccountant(1.0, 0.1)
        accountant.charge("first", 0.1)
        accountant.charge("second", 0.2, 0.05)
        labels = [entry.label for entry in accountant.ledger]
        assert labels == ["first", "second"]

    def test_describe_mentions_entries(self):
        accountant = PrivacyAccountant(0.2, 0.01)
        accountant.charge("degrees", 0.1)
        text = accountant.describe()
        assert "degrees" in text
        assert "epsilon=0.2" in text

    def test_repr(self):
        accountant = PrivacyAccountant(0.2, 0.01)
        assert "entries=0" in repr(accountant)

    def test_remaining_floors_at_zero(self):
        accountant = PrivacyAccountant(0.1)
        accountant.charge("all", 0.1)
        assert accountant.remaining == (0.0, 0.0)


class TestConcurrency:
    """The serve-layer contract: check-and-spend is atomic.

    Many threads racing to charge must never jointly exceed the budget —
    the ledger total after the dust settles is exactly the number of
    granted charges times the unit spend, and that total fits the budget.
    """

    def test_no_overspend_under_contention(self):
        import threading

        budget, unit, threads = 1.0, 0.01, 32
        # 100 grants fit exactly; 32 threads x 5 tries = 160 attempts.
        accountant = PrivacyAccountant(budget, 1.0)
        granted = []
        refused = []
        barrier = threading.Barrier(threads)

        def spender(worker: int) -> None:
            barrier.wait()
            for attempt in range(5):
                try:
                    accountant.charge(f"w{worker}-{attempt}", unit, unit)
                    granted.append(1)
                except PrivacyBudgetError:
                    refused.append(1)

        pool = [
            threading.Thread(target=spender, args=(index,))
            for index in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        spent_epsilon, spent_delta = accountant.spent
        assert spent_epsilon <= budget + 1e-9
        assert len(accountant.ledger) == len(granted)
        # The ledger sums exactly to what was granted: no lost or
        # double-counted entries.
        assert spent_epsilon == pytest.approx(len(granted) * unit)
        assert len(granted) == 100
        assert len(refused) == 160 - 100

    def test_concurrent_reads_are_consistent_snapshots(self):
        import threading

        accountant = PrivacyAccountant(100.0, 1.0)
        stop = threading.Event()
        problems = []

        def reader() -> None:
            # Iterating a snapshot while the writer appends must never
            # raise (no shared mutable list) and each snapshot must be
            # internally coherent: its sum equals the entry count times
            # the fixed unit charge.
            while not stop.is_set():
                try:
                    ledger = accountant.ledger
                    total = sum(entry.epsilon for entry in ledger)
                    if abs(total - 0.1 * len(ledger)) > 1e-9:
                        problems.append(f"torn snapshot: {total} vs {len(ledger)}")
                except Exception as exc:  # pragma: no cover - the failure mode
                    problems.append(repr(exc))
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        for index in range(200):
            accountant.charge(f"c{index}", 0.1, 0.001)
        stop.set()
        thread.join()
        assert not problems


class TestSerialization:
    def test_json_roundtrip(self):
        accountant = PrivacyAccountant(1.0, 0.1)
        accountant.charge("degrees", 0.4, 0.02)
        accountant.charge("triangles", 0.1, 0.0)
        payload = accountant.to_json()
        restored = PrivacyAccountant.from_json(payload)
        assert restored.epsilon == accountant.epsilon
        assert restored.delta == accountant.delta
        assert restored.ledger == accountant.ledger
        assert restored.spent == accountant.spent

    def test_json_is_plain_data(self):
        import json

        accountant = PrivacyAccountant(0.5)
        accountant.charge("x", 0.2)
        text = json.dumps(accountant.to_json())
        assert PrivacyAccountant.from_json(json.loads(text)).spent == (0.2, 0.0)

    def test_restored_ledger_is_verbatim_even_over_budget(self):
        """A budget shrink must not erase recorded spends."""
        accountant = PrivacyAccountant(1.0)
        accountant.charge("big", 0.9)
        payload = accountant.to_json()
        payload["epsilon"] = 0.5  # config shrank after the spend
        restored = PrivacyAccountant.from_json(payload)
        assert restored.spent == (0.9, 0.0)
        assert restored.remaining == (0.0, 0.0)
        with pytest.raises(PrivacyBudgetError):
            restored.charge("more", 0.01)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValidationError):
            PrivacyAccountant.from_json({"epsilon": 1.0})
        with pytest.raises(ValidationError):
            PrivacyAccountant.from_json(
                {"epsilon": 1.0, "delta": 0.0, "ledger": [{"label": "x"}]}
            )
        with pytest.raises(ValidationError):
            PrivacyAccountant.from_json([1, 2, 3])

    def test_pickle_roundtrip_recreates_the_lock(self):
        """Fitted models carry accountants through pool workers."""
        import pickle

        accountant = PrivacyAccountant(1.0, 0.1)
        accountant.charge("noise", 0.3, 0.01)
        clone = pickle.loads(pickle.dumps(accountant))
        assert clone.spent == accountant.spent
        assert clone.ledger == accountant.ledger
        # The clone's lock works: it can keep charging.
        clone.charge("more", 0.1, 0.0)
        assert clone.spent[0] == pytest.approx(0.4)
