"""Tests for k-edge privacy arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.privacy.k_edge import (
    KEdgeGuarantee,
    k_edge_guarantee,
    per_edge_budget_for_group,
)


class TestKEdgeGuarantee:
    def test_composition_scaling(self):
        guarantee = k_edge_guarantee(0.2, 0.01, 5)
        assert guarantee.epsilon == pytest.approx(1.0)
        assert guarantee.delta == pytest.approx(0.05)
        assert guarantee.k == 5

    def test_k_one_is_identity(self):
        guarantee = k_edge_guarantee(0.3, 0.02, 1)
        assert guarantee.epsilon == 0.3
        assert guarantee.delta == 0.02

    def test_describe(self):
        text = k_edge_guarantee(0.1, 0.0, 3).describe()
        assert "groups of up to 3" in text

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            k_edge_guarantee(0.1, 0.0, 0)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            k_edge_guarantee(-0.1, 0.0, 2)


class TestPerEdgeBudget:
    def test_inverse_of_composition(self):
        epsilon, delta = per_edge_budget_for_group(1.0, 0.05, 5)
        guarantee = k_edge_guarantee(epsilon, delta, 5)
        assert guarantee.epsilon == pytest.approx(1.0)
        assert guarantee.delta == pytest.approx(0.05)

    def test_node_cover_use_case(self):
        # Cover nodes of degree up to 9 -> groups of k = 10 edges.
        epsilon, delta = per_edge_budget_for_group(2.0, 0.1, 10)
        assert epsilon == pytest.approx(0.2)
        assert delta == pytest.approx(0.01)

    def test_frozen(self):
        guarantee = KEdgeGuarantee(1, 0.1, 0.0)
        with pytest.raises(AttributeError):
            guarantee.epsilon = 1.0  # type: ignore[misc]
