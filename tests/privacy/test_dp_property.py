"""Empirical differential-privacy checks on the mechanisms.

These tests verify the *defining inequality* of DP on concrete adjacent
inputs by histogram comparison: for outputs binned into B,

    P[M(x) ∈ B] ≤ e^ε · P[M(x') ∈ B] + slack,

with Monte-Carlo slack.  They cannot prove privacy, but they catch the
classic calibration bugs (wrong sensitivity, ε/scale inversions) that
unit tests on moments miss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi_graph
from repro.privacy.degree_release import release_sorted_degrees
from repro.privacy.mechanisms import geometric_mechanism, laplace_mechanism


def _histogram_ratio_ok(
    samples_a: np.ndarray,
    samples_b: np.ndarray,
    epsilon: float,
    *,
    n_bins: int = 30,
) -> bool:
    """Check the DP inequality on shared bins with 4-sigma Monte-Carlo slack."""
    low = min(samples_a.min(), samples_b.min())
    high = max(samples_a.max(), samples_b.max())
    bins = np.linspace(low, high, n_bins + 1)
    count_a, _ = np.histogram(samples_a, bins)
    count_b, _ = np.histogram(samples_b, bins)
    n = samples_a.size
    p_a = count_a / n
    p_b = count_b / n
    # Monte-Carlo slack: the error of the right-hand side e^eps * p_b is
    # amplified by e^eps, and the Laplace inequality is *tight* in the
    # tails, so both error terms must enter at full scale.
    sigma_a = np.sqrt(p_a / n) + 1e-12
    sigma_b = np.sqrt(p_b / n) + 1e-12
    amplification = np.exp(epsilon)
    ok_forward = np.all(
        p_a <= amplification * p_b + 4 * (sigma_a + amplification * sigma_b)
    )
    ok_backward = np.all(
        p_b <= amplification * p_a + 4 * (sigma_b + amplification * sigma_a)
    )
    return bool(ok_forward and ok_backward)


class TestLaplaceMechanismDP:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0])
    def test_adjacent_counts_indistinguishable(self, epsilon):
        n = 120_000
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(1)
        samples_a = np.array(
            laplace_mechanism(np.zeros(n), 1.0, epsilon, seed=rng_a)
        )
        samples_b = np.array(
            laplace_mechanism(np.ones(n), 1.0, epsilon, seed=rng_b)
        )
        assert _histogram_ratio_ok(samples_a, samples_b, epsilon)

    def test_wrong_calibration_is_detected(self):
        # Sanity check on the checker itself: noise calibrated for
        # epsilon = 4 must NOT pass the test at epsilon = 0.5.
        n = 120_000
        samples_a = np.array(laplace_mechanism(np.zeros(n), 1.0, 4.0, seed=0))
        samples_b = np.array(laplace_mechanism(np.ones(n), 1.0, 4.0, seed=1))
        assert not _histogram_ratio_ok(samples_a, samples_b, 0.5)


class TestGeometricMechanismDP:
    def test_adjacent_counts_indistinguishable(self):
        epsilon = 0.8
        n = 120_000
        samples_a = np.array(
            [geometric_mechanism(5, 1, epsilon, seed=s) for s in range(0, n, 25)]
        )
        samples_b = np.array(
            [geometric_mechanism(6, 1, epsilon, seed=s) for s in range(1, n, 25)]
        )
        assert _histogram_ratio_ok(
            samples_a.astype(float), samples_b.astype(float), epsilon, n_bins=15
        )


class TestDegreeReleaseDP:
    def test_neighboring_graphs_indistinguishable_on_summary(self):
        # Full-vector histograms are infeasible; test the DP inequality on
        # a 1-D post-processed summary (sum of released degrees), which by
        # post-processing must satisfy the same epsilon.
        epsilon = 1.0
        graph = erdos_renyi_graph(30, 0.2, seed=0)
        neighbor = graph.with_edge_flipped(0, 1)
        n = 4000
        sums_a = np.array(
            [
                release_sorted_degrees(graph, epsilon, seed=s).degrees.sum()
                for s in range(n)
            ]
        )
        sums_b = np.array(
            [
                release_sorted_degrees(neighbor, epsilon, seed=s + n).degrees.sum()
                for s in range(n)
            ]
        )
        assert _histogram_ratio_ok(sums_a, sums_b, epsilon, n_bins=12)
