"""Tests for the Hay et al. DP degree-sequence release."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import erdos_renyi_graph
from repro.privacy.degree_release import release_sorted_degrees


class TestSensitivityPremise:
    """The mechanism's calibration rests on GS(sorted degrees) <= 2."""

    @given(
        n=st.integers(min_value=2, max_value=14),
        seed=st.integers(min_value=0, max_value=10**6),
        edge=st.tuples(
            st.integers(min_value=0, max_value=13),
            st.integers(min_value=0, max_value=13),
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_edge_flip_moves_sorted_degrees_by_at_most_two(self, n, seed, edge):
        a, b = edge
        if a >= n or b >= n or a == b:
            return
        graph = erdos_renyi_graph(n, 0.4, seed=seed)
        neighbor = graph.with_edge_flipped(a, b)
        original = np.sort(graph.degrees)
        flipped = np.sort(neighbor.degrees)
        assert np.abs(original - flipped).sum() <= 2


class TestRelease:
    def test_monotone_output(self, er_graph):
        release = release_sorted_degrees(er_graph, epsilon=0.5, seed=0)
        assert np.all(np.diff(release.degrees) >= -1e-9)

    def test_nonnegative_when_clipped(self, er_graph):
        release = release_sorted_degrees(er_graph, epsilon=0.1, seed=1)
        assert release.degrees.min() >= 0.0

    def test_clip_disabled(self, er_graph):
        release = release_sorted_degrees(
            er_graph, epsilon=0.01, clip_negative=False, seed=2
        )
        assert release.degrees.min() < 0.0  # tiny epsilon -> huge noise

    def test_deterministic_given_seed(self, er_graph):
        a = release_sorted_degrees(er_graph, 0.5, seed=9)
        b = release_sorted_degrees(er_graph, 0.5, seed=9)
        np.testing.assert_array_equal(a.degrees, b.degrees)

    def test_epsilon_recorded(self, er_graph):
        assert release_sorted_degrees(er_graph, 0.25, seed=0).epsilon == 0.25

    def test_invalid_epsilon(self, er_graph):
        with pytest.raises(ValidationError):
            release_sorted_degrees(er_graph, 0.0)

    def test_noise_scale_tracks_epsilon(self, er_graph):
        truth = np.sort(er_graph.degrees).astype(float)
        errors = {}
        for epsilon in (0.05, 5.0):
            residuals = []
            for seed in range(30):
                release = release_sorted_degrees(
                    er_graph, epsilon, constrained_inference=False,
                    clip_negative=False, seed=seed,
                )
                residuals.append(np.abs(release.noisy - truth).mean())
            errors[epsilon] = np.mean(residuals)
        # Mean |Lap(2/eps)| = 2/eps: a 100x epsilon ratio -> ~100x error.
        assert errors[0.05] > 20 * errors[5.0]

    def test_constrained_inference_reduces_error(self, er_graph):
        truth = np.sort(er_graph.degrees).astype(float)
        raw_errors, inferred_errors = [], []
        for seed in range(25):
            raw = release_sorted_degrees(
                er_graph, 0.1, constrained_inference=False, seed=seed
            )
            inferred = release_sorted_degrees(
                er_graph, 0.1, constrained_inference=True, seed=seed
            )
            raw_errors.append(raw.l2_error(truth))
            inferred_errors.append(inferred.l2_error(truth))
        # Hay et al.'s headline result: post-processing strictly helps.
        assert np.mean(inferred_errors) < 0.7 * np.mean(raw_errors)

    def test_accuracy_in_high_epsilon_limit(self, er_graph):
        truth = np.sort(er_graph.degrees).astype(float)
        release = release_sorted_degrees(er_graph, epsilon=1000.0, seed=3)
        assert release.l2_error(truth) < 0.1

    def test_empty_graph(self):
        release = release_sorted_degrees(Graph(3), epsilon=1.0, seed=0)
        assert release.degrees.shape == (3,)
