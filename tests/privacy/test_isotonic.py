"""Tests for pool-adjacent-violators isotonic regression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.privacy.isotonic import isotonic_regression

float_arrays = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=1,
    max_size=40,
).map(np.array)


class TestBasicCases:
    def test_sorted_input_unchanged(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(isotonic_regression(values), values)

    def test_reverse_sorted_becomes_global_mean(self):
        values = np.array([3.0, 2.0, 1.0])
        np.testing.assert_allclose(isotonic_regression(values), [2.0, 2.0, 2.0])

    def test_single_violation_pools_pair(self):
        values = np.array([1.0, 3.0, 2.0, 4.0])
        np.testing.assert_allclose(isotonic_regression(values), [1.0, 2.5, 2.5, 4.0])

    def test_empty(self):
        assert isotonic_regression(np.array([])).size == 0

    def test_single_element(self):
        np.testing.assert_array_equal(isotonic_regression(np.array([5.0])), [5.0])

    def test_constant(self):
        values = np.full(6, 2.5)
        np.testing.assert_array_equal(isotonic_regression(values), values)

    def test_weighted_projection(self):
        # A heavy first element dominates the pooled block mean.
        values = np.array([2.0, 0.0])
        weights = np.array([3.0, 1.0])
        np.testing.assert_allclose(isotonic_regression(values, weights), [1.5, 1.5])

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            isotonic_regression(np.zeros((2, 2)))

    def test_weight_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            isotonic_regression(np.zeros(3), np.ones(2))

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValidationError):
            isotonic_regression(np.zeros(2), np.array([1.0, 0.0]))


class TestAgainstScipyOracle:
    @given(values=float_arrays)
    @settings(max_examples=60)
    def test_matches_scipy(self, values):
        scipy_optimize = pytest.importorskip("scipy.optimize")
        ours = isotonic_regression(values)
        theirs = scipy_optimize.isotonic_regression(values, increasing=True).x
        np.testing.assert_allclose(ours, theirs, rtol=1e-9, atol=1e-9)


class TestProjectionProperties:
    @given(values=float_arrays)
    @settings(max_examples=60)
    def test_output_is_monotone(self, values):
        result = isotonic_regression(values)
        assert np.all(np.diff(result) >= -1e-9)

    @given(values=float_arrays)
    @settings(max_examples=60)
    def test_sum_preserved(self, values):
        # L2 projection onto the monotone cone preserves the (uniform-
        # weight) total: block means replace block values.
        result = isotonic_regression(values)
        assert result.sum() == pytest.approx(values.sum(), rel=1e-9, abs=1e-6)

    @given(values=float_arrays)
    @settings(max_examples=60)
    def test_idempotent(self, values):
        once = isotonic_regression(values)
        twice = isotonic_regression(once)
        np.testing.assert_allclose(once, twice, rtol=1e-12, atol=1e-12)

    @given(values=float_arrays)
    @settings(max_examples=40)
    def test_never_farther_than_any_monotone_vector(self, values):
        # Projection optimality spot check against the sorted input, which
        # is always a feasible monotone candidate.
        result = isotonic_regression(values)
        candidate = np.sort(values)
        assert np.sum((result - values) ** 2) <= np.sum(
            (candidate - values) ** 2
        ) + 1e-6
