"""Tests for local/smooth sensitivity of the triangle count.

The brute-force oracle enumerates graphs within edit distance s of G and
maximises e^{-beta*s} * LS over them — exactly Definition 4.7 — so the
closed-form computation can be checked as a genuine smooth *upper bound*
that is tight on graphs with room to grow.
"""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import complete_graph, erdos_renyi_graph, star_graph
from repro.privacy.sensitivity import (
    local_sensitivity_at_distance,
    local_sensitivity_triangles,
    smooth_sensitivity_from_distance_bounds,
    smooth_sensitivity_triangles,
    triangle_smooth_beta,
)
from repro.stats.counts import count_triangles


def brute_force_local_sensitivity(graph: Graph) -> int:
    """max |Delta(G) - Delta(G')| over all single-edge-flip neighbours."""
    base = count_triangles(graph)
    best = 0
    for a, b in itertools.combinations(range(graph.n_nodes), 2):
        flipped = graph.with_edge_flipped(a, b)
        best = max(best, abs(count_triangles(flipped) - base))
    return best


def brute_force_smooth_sensitivity(graph: Graph, beta: float, max_s: int) -> float:
    """max over graphs within distance <= max_s of e^{-beta*s} * LS."""
    frontier = {graph}
    seen = {graph}
    best = float(brute_force_local_sensitivity(graph))
    for s in range(1, max_s + 1):
        next_frontier = set()
        for current in frontier:
            for a, b in itertools.combinations(range(current.n_nodes), 2):
                neighbor = current.with_edge_flipped(a, b)
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.add(neighbor)
        for candidate in next_frontier:
            value = math.exp(-beta * s) * brute_force_local_sensitivity(candidate)
            best = max(best, value)
        frontier = next_frontier
    return best


class TestLocalSensitivity:
    def test_flip_changes_triangles_by_common_neighbors(self):
        # The structural fact behind LS = max common neighbours.
        graph = erdos_renyi_graph(12, 0.4, seed=0)
        base = count_triangles(graph)
        adjacency = graph.to_dense().astype(int)
        for a in range(12):
            for b in range(a + 1, 12):
                common = int((adjacency[a] & adjacency[b]).sum())
                change = abs(count_triangles(graph.with_edge_flipped(a, b)) - base)
                assert change == common

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force(self, seed):
        graph = erdos_renyi_graph(10, 0.45, seed=seed)
        assert local_sensitivity_triangles(graph) == brute_force_local_sensitivity(
            graph
        )

    def test_complete_graph(self):
        assert local_sensitivity_triangles(complete_graph(6)) == 4  # n - 2

    def test_star(self):
        assert local_sensitivity_triangles(star_graph(7)) == 1

    def test_empty(self):
        assert local_sensitivity_triangles(Graph(5)) == 0


class TestDistanceBounds:
    def test_grows_linearly_until_cap(self):
        graph = erdos_renyi_graph(10, 0.3, seed=1)
        base = local_sensitivity_triangles(graph)
        assert local_sensitivity_at_distance(graph, 0) == base
        assert local_sensitivity_at_distance(graph, 3) == min(base + 3, 8)
        assert local_sensitivity_at_distance(graph, 100) == 8  # n - 2

    def test_negative_distance_rejected(self):
        with pytest.raises(ValidationError):
            local_sensitivity_at_distance(Graph(4), -1)

    def test_tiny_graphs_zero(self):
        assert local_sensitivity_at_distance(Graph(2, [(0, 1)]), 5) == 0


class TestSmoothSensitivity:
    def test_at_least_local_sensitivity(self):
        graph = erdos_renyi_graph(15, 0.3, seed=2)
        beta = 0.1
        assert smooth_sensitivity_triangles(graph, beta) >= local_sensitivity_triangles(
            graph
        )

    def test_upper_bounds_brute_force(self):
        # Our closed form must dominate the true smooth sensitivity
        # (enumerated to distance 2; deeper terms only shrink with e^-bs).
        for seed in range(3):
            graph = erdos_renyi_graph(6, 0.4, seed=seed)
            beta = 0.4
            ours = smooth_sensitivity_triangles(graph, beta)
            brute = brute_force_smooth_sensitivity(graph, beta, max_s=2)
            assert ours >= brute - 1e-9

    def test_tight_when_linear_growth_achievable(self):
        # On a star there is always room to add edges closing triangles, so
        # min(c_max + s, n-2) is achieved and the bound is exact for small s.
        graph = star_graph(6)
        beta = 0.8  # strong decay: optimum at very small s
        ours = smooth_sensitivity_triangles(graph, beta)
        brute = brute_force_smooth_sensitivity(graph, beta, max_s=2)
        assert ours == pytest.approx(brute, rel=1e-9)

    def test_decreasing_in_beta(self):
        graph = erdos_renyi_graph(20, 0.2, seed=3)
        values = [
            smooth_sensitivity_triangles(graph, beta) for beta in (0.01, 0.1, 1.0)
        ]
        assert values[0] >= values[1] >= values[2]

    def test_cap_respected(self):
        graph = erdos_renyi_graph(12, 0.5, seed=4)
        assert smooth_sensitivity_triangles(graph, 1e-9) <= 10  # n - 2

    def test_small_graph_zero(self):
        assert smooth_sensitivity_triangles(Graph(2, [(0, 1)]), 0.5) == 0.0


class TestDistanceBoundMaximisation:
    @given(
        base=st.integers(min_value=0, max_value=50),
        cap=st.integers(min_value=1, max_value=200),
        beta=st.floats(min_value=1e-3, max_value=2.0),
    )
    @settings(max_examples=80)
    def test_closed_form_matches_scan(self, base, cap, beta):
        closed = smooth_sensitivity_from_distance_bounds(base, beta, cap)
        scan = max(
            math.exp(-beta * s) * min(base + s, cap) for s in range(0, cap + 2)
        )
        assert closed == pytest.approx(scan, rel=1e-9, abs=1e-12)

    def test_base_above_cap(self):
        assert smooth_sensitivity_from_distance_bounds(10, 0.5, 5) == 5.0

    def test_zero_cap(self):
        assert smooth_sensitivity_from_distance_bounds(3, 0.5, 0) == 0.0


class TestBetaCalibration:
    def test_paper_formula(self):
        beta = triangle_smooth_beta(0.2, 0.01)
        assert beta == pytest.approx(0.2 / (2 * math.log(200)))

    def test_delta_bounds(self):
        with pytest.raises(ValidationError):
            triangle_smooth_beta(0.2, 0.0)
        with pytest.raises(ValidationError):
            triangle_smooth_beta(0.2, 1.0)

    def test_epsilon_positive(self):
        with pytest.raises(ValidationError):
            triangle_smooth_beta(0.0, 0.01)
