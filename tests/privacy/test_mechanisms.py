"""Tests for the Laplace and geometric mechanisms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.privacy.mechanisms import (
    geometric_mechanism,
    laplace_mechanism,
    laplace_noise,
)


class TestLaplaceNoise:
    def test_shape(self):
        assert laplace_noise(1.0, 10, seed=0).shape == (10,)

    def test_tuple_shape(self):
        assert laplace_noise(1.0, (3, 4), seed=0).shape == (3, 4)

    def test_scale_matches_distribution(self):
        samples = laplace_noise(2.5, 200_000, seed=1)
        # For Laplace(0, b): E|X| = b and Var = 2b^2.
        assert np.mean(np.abs(samples)) == pytest.approx(2.5, rel=0.02)
        assert np.var(samples) == pytest.approx(2 * 2.5**2, rel=0.05)

    def test_zero_mean(self):
        samples = laplace_noise(1.0, 200_000, seed=2)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.02)

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            laplace_noise(0.0, 5)


class TestLaplaceMechanism:
    def test_scalar_in_scalar_out(self):
        value = laplace_mechanism(10.0, sensitivity=1.0, epsilon=1.0, seed=0)
        assert isinstance(value, float)

    def test_vector_shape_preserved(self):
        result = laplace_mechanism(np.zeros(7), 1.0, 0.5, seed=0)
        assert result.shape == (7,)

    def test_deterministic_given_seed(self):
        a = laplace_mechanism(5.0, 1.0, 0.5, seed=42)
        b = laplace_mechanism(5.0, 1.0, 0.5, seed=42)
        assert a == b

    def test_noise_scale_is_sensitivity_over_epsilon(self):
        draws = np.array(
            [laplace_mechanism(0.0, 4.0, 2.0, seed=s) for s in range(40_000)]
        )
        assert np.mean(np.abs(draws)) == pytest.approx(2.0, rel=0.03)

    def test_epsilon_must_be_positive(self):
        with pytest.raises(ValidationError):
            laplace_mechanism(1.0, 1.0, 0.0)

    def test_sensitivity_must_be_positive(self):
        with pytest.raises(ValidationError):
            laplace_mechanism(1.0, 0.0, 1.0)

    def test_unbiased(self):
        draws = np.array(
            [laplace_mechanism(100.0, 1.0, 1.0, seed=s) for s in range(20_000)]
        )
        assert np.mean(draws) == pytest.approx(100.0, abs=0.05)


class TestGeometricMechanism:
    def test_integer_output(self):
        value = geometric_mechanism(10, sensitivity=1, epsilon=0.5, seed=0)
        assert isinstance(value, int)

    def test_array_stays_integral(self):
        result = geometric_mechanism(np.arange(5), 1, 0.5, seed=1)
        assert result.dtype == np.int64

    def test_symmetric_around_value(self):
        draws = np.array(
            [geometric_mechanism(0, 1, 1.0, seed=s) for s in range(40_000)]
        )
        assert abs(np.mean(draws)) < 0.05

    def test_variance_shrinks_with_epsilon(self):
        low = np.var([geometric_mechanism(0, 1, 0.2, seed=s) for s in range(5000)])
        high = np.var([geometric_mechanism(0, 1, 2.0, seed=s) for s in range(5000)])
        assert high < low

    def test_non_integer_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            geometric_mechanism(1, 0, 1.0)
