"""Tests for the (ε, δ)-DP triangle release."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import erdos_renyi_graph
from repro.privacy.triangles import release_triangle_count
from repro.stats.counts import count_triangles


class TestRelease:
    def test_unbiased_over_seeds(self, er_graph):
        truth = count_triangles(er_graph)
        draws = [
            release_triangle_count(er_graph, 1.0, 0.01, seed=s).value
            for s in range(400)
        ]
        scale = release_triangle_count(er_graph, 1.0, 0.01, seed=0).noise_scale
        standard_error = np.sqrt(2 * scale**2 / len(draws))
        assert np.mean(draws) == pytest.approx(truth, abs=5 * standard_error)

    def test_noise_scale_formula(self, er_graph):
        release = release_triangle_count(er_graph, 0.5, 0.01, seed=0)
        assert release.noise_scale == pytest.approx(
            2 * release.smooth_sensitivity / 0.5
        )

    def test_beta_matches_calibration(self, er_graph):
        release = release_triangle_count(er_graph, 0.4, 0.05, seed=0)
        assert release.beta == pytest.approx(0.4 / (2 * np.log(2 / 0.05)))

    def test_higher_epsilon_means_less_noise(self, er_graph):
        low = release_triangle_count(er_graph, 0.1, 0.01, seed=0)
        high = release_triangle_count(er_graph, 10.0, 0.01, seed=0)
        assert high.noise_scale < low.noise_scale

    def test_deterministic_given_seed(self, er_graph):
        a = release_triangle_count(er_graph, 0.5, 0.01, seed=7)
        b = release_triangle_count(er_graph, 0.5, 0.01, seed=7)
        assert a.value == b.value

    def test_parameters_recorded(self, er_graph):
        release = release_triangle_count(er_graph, 0.3, 0.02, seed=0)
        assert release.epsilon == 0.3
        assert release.delta == 0.02

    def test_triangle_free_graph_zero_scale_exact(self):
        # A 2-node graph has zero smooth sensitivity: no noise needed.
        graph = Graph(2, [(0, 1)])
        release = release_triangle_count(graph, 0.5, 0.01, seed=0)
        assert release.value == 0.0
        assert release.noise_scale == 0.0

    def test_invalid_epsilon(self, er_graph):
        with pytest.raises(ValidationError):
            release_triangle_count(er_graph, 0.0, 0.01)

    def test_invalid_delta(self, er_graph):
        with pytest.raises(ValidationError):
            release_triangle_count(er_graph, 0.5, 0.0)

    def test_accuracy_improves_with_epsilon(self):
        graph = erdos_renyi_graph(150, 0.1, seed=0)
        truth = count_triangles(graph)
        errors = {}
        for epsilon in (0.1, 10.0):
            residuals = [
                abs(release_triangle_count(graph, epsilon, 0.01, seed=s).value - truth)
                for s in range(40)
            ]
            errors[epsilon] = np.mean(residuals)
        assert errors[10.0] < errors[0.1]
