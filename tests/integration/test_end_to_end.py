"""Integration tests: the paper's full pipeline at reduced scale.

These tests exercise the exact call pattern of the evaluation benches —
dataset -> three estimators -> synthetic graphs -> statistics — and assert
the qualitative claims of the paper (Private ≈ KronMom; synthetic graphs
match the original's headline statistics) rather than exact numbers.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.nonprivate import fit_kronfit, fit_kronmom, fit_private
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.stats.comparison import ks_distance
from repro.stats.counts import matching_statistics


@pytest.fixture(scope="module")
def source_graph():
    """A 4096-node SKG — large enough to be statistically meaningful."""
    return sample_skg(Initiator(0.95, 0.55, 0.2), 12, seed=9)


class TestEstimatorAgreement:
    def test_all_three_estimators_roughly_agree(self, source_graph):
        truth = Initiator(0.95, 0.55, 0.2)
        mom = fit_kronmom(source_graph)
        fit = fit_kronfit(
            source_graph,
            n_iterations=20,
            warmup_swaps=600,
            n_permutation_samples=3,
            sample_spacing=100,
            seed=0,
        )
        private = fit_private(source_graph, epsilon=0.2, delta=0.01, seed=0)
        assert mom.initiator.distance(truth) < 0.1
        assert fit.initiator.distance(truth) < 0.3
        assert private.initiator.distance(mom.initiator) < 0.15

    def test_private_synthetic_graph_matches_statistics(self, source_graph):
        private = fit_private(source_graph, epsilon=0.2, delta=0.01, seed=1)
        synthetic = private.sample_graph(seed=2)
        original_stats = matching_statistics(source_graph)
        synthetic_stats = matching_statistics(synthetic)
        assert synthetic_stats.edges == pytest.approx(original_stats.edges, rel=0.35)
        assert synthetic_stats.hairpins == pytest.approx(
            original_stats.hairpins, rel=0.6
        )

    def test_degree_distributions_close(self, source_graph):
        private = fit_private(source_graph, epsilon=0.2, delta=0.01, seed=3)
        synthetic = private.sample_graph(seed=4)
        distance = ks_distance(source_graph.degrees, synthetic.degrees)
        assert distance < 0.25


class TestPublicApiSurface:
    def test_quickstart_flow(self):
        graph = repro.sample_skg(repro.Initiator(0.9, 0.5, 0.2), 9, seed=0)
        estimator = repro.PrivateKroneckerEstimator(epsilon=1.0, delta=0.01, seed=0)
        estimate = estimator.fit(graph)
        synthetic = estimate.sample_graph(seed=1)
        assert synthetic.n_nodes == graph.n_nodes
        assert "privacy budget" in estimate.describe()

    def test_version_exported(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestPrivacyAccountingEndToEnd:
    def test_ledger_composition_matches_corollary(self, source_graph):
        estimate = fit_private(source_graph, epsilon=0.2, delta=0.01, seed=0).details
        epsilon, delta = estimate.release.accountant.spent
        assert epsilon == pytest.approx(0.2)
        assert delta == pytest.approx(0.01)

    def test_statistics_only_touch_graph_through_dp_releases(self, source_graph):
        # The moment matcher input must equal the DP statistics (possibly
        # with the documented triangle floor), never the exact counts.
        estimate = fit_private(source_graph, epsilon=0.2, delta=0.01, seed=5).details
        exact = matching_statistics(source_graph)
        matched = estimate.moment_result.observed
        assert matched.edges != exact.edges  # Laplace noise is a.s. nonzero
        assert matched.hairpins != exact.hairpins
