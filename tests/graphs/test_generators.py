"""Tests for the random-graph generators (networkx used only as oracle)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    configuration_model_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_graph,
    gnm_random_graph,
    path_graph,
    powerlaw_cluster_graph,
    star_graph,
)
from repro.stats.clustering import average_clustering


class TestDeterministicGraphs:
    def test_star(self):
        graph = star_graph(6)
        assert graph.degrees[0] == 5
        assert np.all(graph.degrees[1:] == 1)

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.n_edges == 10
        assert np.all(graph.degrees == 4)

    def test_complete_trivial(self):
        assert complete_graph(1).n_edges == 0

    def test_cycle(self):
        graph = cycle_graph(5)
        assert graph.n_edges == 5
        assert np.all(graph.degrees == 2)

    def test_cycle_minimum_size(self):
        with pytest.raises(ValidationError):
            cycle_graph(2)

    def test_path(self):
        graph = path_graph(4)
        assert graph.n_edges == 3
        assert list(graph.degrees) == [1, 2, 2, 1]

    def test_empty(self):
        assert empty_graph(7).n_edges == 0


class TestErdosRenyi:
    def test_p_zero(self):
        assert erdos_renyi_graph(50, 0.0, seed=0).n_edges == 0

    def test_p_one(self):
        graph = erdos_renyi_graph(10, 1.0, seed=0)
        assert graph.n_edges == 45

    def test_deterministic_given_seed(self):
        a = erdos_renyi_graph(40, 0.2, seed=5)
        b = erdos_renyi_graph(40, 0.2, seed=5)
        assert a == b

    def test_edge_count_near_expectation(self):
        n, p = 300, 0.05
        counts = [erdos_renyi_graph(n, p, seed=s).n_edges for s in range(20)]
        expected = p * n * (n - 1) / 2
        standard_deviation = np.sqrt(n * (n - 1) / 2 * p * (1 - p))
        assert abs(np.mean(counts) - expected) < 3 * standard_deviation / np.sqrt(20)

    def test_sparse_path_matches_distribution(self):
        # Force the sparse G(n, m) path by exceeding the dense limit.
        graph = erdos_renyi_graph(4000, 0.0005, seed=3)
        expected = 0.0005 * 4000 * 3999 / 2
        assert 0.5 * expected < graph.n_edges < 1.5 * expected

    def test_invalid_probability(self):
        with pytest.raises(ValidationError):
            erdos_renyi_graph(10, 1.5)


class TestGnm:
    def test_exact_edge_count(self):
        graph = gnm_random_graph(30, 50, seed=1)
        assert graph.n_edges == 50

    def test_dense_regime(self):
        total = 10 * 9 // 2
        graph = gnm_random_graph(10, total - 1, seed=2)
        assert graph.n_edges == total - 1

    def test_sparse_regime_exact_count(self):
        graph = gnm_random_graph(5000, 800, seed=4)
        assert graph.n_edges == 800

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValidationError):
            gnm_random_graph(4, 10)

    def test_zero_edges(self):
        assert gnm_random_graph(5, 0, seed=0).n_edges == 0

    def test_uniformity_over_pairs(self):
        # Each of the 3 pairs of K3 should appear with equal frequency.
        counts = {(0, 1): 0, (0, 2): 0, (1, 2): 0}
        for seed in range(600):
            graph = gnm_random_graph(3, 1, seed=seed)
            counts[next(iter(graph.edge_set()))] += 1
        values = np.array(list(counts.values()))
        assert values.min() > 140  # expected 200 each; loose 3-sigma-ish bound


class TestBarabasiAlbert:
    def test_edge_count(self):
        n, m = 200, 3
        graph = barabasi_albert_graph(n, m, seed=0)
        assert graph.n_edges == m + m * (n - m - 1)

    def test_minimum_degree(self):
        graph = barabasi_albert_graph(100, 4, seed=1)
        assert graph.degrees.min() >= 1
        # all arriving nodes have degree >= m
        assert np.sort(graph.degrees)[int(0.1 * 100)] >= 1

    def test_heavy_tail(self):
        graph = barabasi_albert_graph(2000, 3, seed=2)
        # Hubs much larger than the median is the signature of PA.
        assert graph.degrees.max() > 10 * np.median(graph.degrees)

    def test_m_must_be_smaller_than_n(self):
        with pytest.raises(ValidationError):
            barabasi_albert_graph(5, 5)

    def test_deterministic(self):
        assert barabasi_albert_graph(50, 2, seed=9) == barabasi_albert_graph(50, 2, seed=9)


class TestPowerlawCluster:
    def test_edge_count_close_to_ba(self):
        n, m = 300, 3
        graph = powerlaw_cluster_graph(n, m, 0.5, seed=0)
        assert graph.n_edges == m + m * (n - m - 1)

    def test_clustering_exceeds_ba(self):
        ba = barabasi_albert_graph(800, 4, seed=3)
        hk = powerlaw_cluster_graph(800, 4, 0.9, seed=3)
        assert average_clustering(hk) > 2 * average_clustering(ba)

    def test_p_zero_is_still_valid_graph(self):
        graph = powerlaw_cluster_graph(100, 2, 0.0, seed=1)
        assert graph.n_edges == 2 + 2 * 97

    def test_invalid_p(self):
        with pytest.raises(ValidationError):
            powerlaw_cluster_graph(10, 2, 1.5)

    def test_deterministic(self):
        a = powerlaw_cluster_graph(60, 3, 0.6, seed=11)
        b = powerlaw_cluster_graph(60, 3, 0.6, seed=11)
        assert a == b


class TestConfigurationModel:
    def test_degrees_bounded_by_targets(self):
        degrees = np.array([3, 3, 2, 2, 1, 1])
        graph = configuration_model_graph(degrees, seed=0)
        assert np.all(graph.degrees <= degrees)

    def test_regular_sequence(self):
        graph = configuration_model_graph([2] * 10, seed=4)
        assert graph.degrees.sum() % 2 == 0

    def test_odd_sum_rejected(self):
        with pytest.raises(ValidationError):
            configuration_model_graph([3, 2])

    def test_negative_degree_rejected(self):
        with pytest.raises(ValidationError):
            configuration_model_graph([-1, 1])

    def test_empty_sequence(self):
        assert configuration_model_graph([]).n_nodes == 0


class TestAgainstNetworkxOracle:
    def test_ba_degree_distribution_shape(self):
        networkx = pytest.importorskip("networkx")
        ours = barabasi_albert_graph(1500, 3, seed=0)
        theirs = networkx.barabasi_albert_graph(1500, 3, seed=0)
        our_degrees = np.sort(ours.degrees)[::-1]
        their_degrees = np.sort([d for _, d in theirs.degree()])[::-1]
        # Same maximum-degree order of magnitude and identical edge counts.
        assert ours.n_edges == theirs.number_of_edges()
        assert 0.3 < our_degrees[0] / their_degrees[0] < 3.0


@given(
    n=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_generators_produce_simple_graphs(n, seed):
    """No generator may emit loops or duplicate edges (Graph enforces it)."""
    graphs = [
        erdos_renyi_graph(n, 0.3, seed=seed),
        gnm_random_graph(n, min(n, n * (n - 1) // 2), seed=seed),
    ]
    if n >= 4:
        graphs.append(barabasi_albert_graph(n, 2, seed=seed))
        graphs.append(powerlaw_cluster_graph(n, 2, 0.5, seed=seed))
    for graph in graphs:
        u, v = graph.edge_arrays
        assert np.all(u < v)
        assert graph.degrees.sum() == 2 * graph.n_edges
