"""Tests for the dataset registry and its stand-ins."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.graphs.datasets import available_datasets, dataset_info, load_dataset
from repro.stats.clustering import average_clustering


class TestRegistry:
    def test_registered_datasets(self):
        names = available_datasets()
        assert names == [
            "ca-grqc",
            "ca-hepth",
            "as20",
            "synthetic-kronecker",
            "skg-k16",
            "skg-k18",
            "skg-k20",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("does-not-exist")

    def test_info_is_case_insensitive(self):
        assert dataset_info("CA-GrQC").name == "ca-grqc"

    def test_specs_carry_provenance(self):
        spec = dataset_info("ca-grqc")
        assert "Stand-in" in spec.description
        assert spec.kind == "standin"

    def test_synthetic_is_not_a_standin(self):
        assert dataset_info("synthetic-kronecker").kind == "synthetic"


class TestStandinFidelity:
    @pytest.mark.parametrize("name", ["ca-grqc", "ca-hepth", "as20"])
    def test_sizes_match_paper_exactly(self, name):
        spec = dataset_info(name)
        graph = load_dataset(name)
        assert graph.n_nodes == spec.paper_nodes
        assert graph.n_edges == spec.paper_edges

    def test_default_load_is_deterministic(self):
        assert load_dataset("as20") == load_dataset("as20")

    def test_custom_seed_changes_graph(self):
        assert load_dataset("as20", seed=1) != load_dataset("as20", seed=2)

    def test_synthetic_kronecker_node_count(self):
        graph = load_dataset("synthetic-kronecker")
        assert graph.n_nodes == 2**14

    def test_coauthorship_standins_have_high_clustering(self):
        # The substitution argument (DESIGN.md): co-authorship stand-ins
        # must be high-clustering, the AS stand-in low-clustering.
        grqc = load_dataset("ca-grqc")
        as20 = load_dataset("as20")
        assert average_clustering(grqc) > 0.2
        assert average_clustering(as20) < 0.1


class TestDiskOverride:
    def test_data_dir_used_when_file_present(self, tmp_path, monkeypatch):
        (tmp_path / "ca-grqc.txt").write_text("0 1\n1 2\n")
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        graph = load_dataset("ca-grqc")
        assert graph.n_edges == 2

    def test_data_dir_ignored_when_file_missing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        graph = load_dataset("as20")
        assert graph.n_edges == dataset_info("as20").paper_edges
