"""Tests for the core Graph type, including hypothesis invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError, ValidationError
from repro.graphs import Graph


def edge_lists(max_nodes: int = 12, max_edges: int = 40):
    """Strategy: (n_nodes, raw edge list) with arbitrary duplicates/order."""
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=max_edges,
            ),
        )
    )


class TestConstruction:
    def test_empty(self):
        graph = Graph(0)
        assert graph.n_nodes == 0
        assert graph.n_edges == 0

    def test_loops_dropped(self):
        graph = Graph(3, [(0, 0), (1, 1), (0, 1)])
        assert graph.n_edges == 1

    def test_duplicates_and_mirrors_collapse(self):
        graph = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.n_edges == 1

    def test_canonical_order(self):
        graph = Graph(4, [(3, 1), (2, 0)])
        u, v = graph.edge_arrays
        assert list(u) == [0, 1]
        assert list(v) == [2, 3]

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(3, [(0, 3)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(3, [(-1, 0)])

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValidationError):
            Graph(-1)

    def test_non_integer_nodes_rejected(self):
        with pytest.raises(ValidationError):
            Graph(2.5)  # type: ignore[arg-type]

    def test_non_integer_edges_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(3, np.array([[0.5, 1.0]]))

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(3, np.array([[0, 1, 2]]))


class TestAccessors:
    def test_degrees(self, square_with_diagonal):
        np.testing.assert_array_equal(
            square_with_diagonal.degrees, [3, 2, 3, 2]
        )

    def test_degree_single(self, square_with_diagonal):
        assert square_with_diagonal.degree(0) == 3

    def test_degree_invalid_node(self, triangle):
        with pytest.raises(ValidationError):
            triangle.degree(5)

    def test_neighbors_sorted(self, square_with_diagonal):
        np.testing.assert_array_equal(
            square_with_diagonal.neighbors(0), [1, 2, 3]
        )

    def test_has_edge_both_orders(self, triangle):
        assert triangle.has_edge(0, 2)
        assert triangle.has_edge(2, 0)

    def test_has_edge_absent(self, path4):
        assert not path4.has_edge(0, 3)

    def test_has_edge_self_loop_false(self, triangle):
        assert not triangle.has_edge(1, 1)

    def test_density_triangle(self, triangle):
        assert triangle.density == 1.0

    def test_density_small_graph(self):
        assert Graph(1).density == 0.0

    def test_edges_iteration(self, triangle):
        assert list(triangle.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_adjacency_symmetric(self, square_with_diagonal):
        dense = square_with_diagonal.adjacency.toarray()
        np.testing.assert_array_equal(dense, dense.T)
        assert dense.diagonal().sum() == 0

    def test_edge_arrays_read_only(self, triangle):
        u, _v = triangle.edge_arrays
        with pytest.raises(ValueError):
            u[0] = 5

    def test_degrees_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.degrees[0] = 5


class TestAlternateConstructors:
    def test_from_dense_symmetrizes(self):
        matrix = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]])
        graph = Graph.from_dense(matrix)
        assert graph.edge_set() == {(0, 1), (1, 2)}

    def test_from_dense_drops_diagonal(self):
        graph = Graph.from_dense(np.eye(3))
        assert graph.n_edges == 0

    def test_from_dense_rejects_non_square(self):
        with pytest.raises(GraphFormatError):
            Graph.from_dense(np.zeros((2, 3)))

    def test_from_sparse_roundtrip(self, square_with_diagonal):
        rebuilt = Graph.from_sparse(square_with_diagonal.adjacency)
        assert rebuilt == square_with_diagonal

    def test_from_networkx(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.karate_club_graph()
        graph = Graph.from_networkx(nx_graph)
        assert graph.n_nodes == nx_graph.number_of_nodes()
        assert graph.n_edges == nx_graph.number_of_edges()

    def test_to_networkx_roundtrip(self, square_with_diagonal):
        pytest.importorskip("networkx")
        back = Graph.from_networkx(square_with_diagonal.to_networkx())
        assert back == square_with_diagonal

    def test_from_edge_arrays_shape_mismatch(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edge_arrays(3, np.array([0, 1]), np.array([1]))


class TestValueSemantics:
    def test_equality(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])

    def test_inequality_different_nodes(self):
        assert Graph(3, [(0, 1)]) != Graph(4, [(0, 1)])

    def test_inequality_different_edges(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])

    def test_hash_consistency(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(2, 1), (1, 0)])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_repr(self, triangle):
        assert "n_nodes=3" in repr(triangle)
        assert "n_edges=3" in repr(triangle)


class TestEdgeFlip:
    def test_flip_removes_existing(self, triangle):
        flipped = triangle.with_edge_flipped(0, 1)
        assert flipped.n_edges == 2
        assert not flipped.has_edge(0, 1)

    def test_flip_adds_missing(self, path4):
        flipped = path4.with_edge_flipped(0, 3)
        assert flipped.has_edge(0, 3)

    def test_flip_is_involution(self, square_with_diagonal):
        twice = square_with_diagonal.with_edge_flipped(1, 3).with_edge_flipped(1, 3)
        assert twice == square_with_diagonal

    def test_flip_rejects_loop(self, triangle):
        with pytest.raises(ValidationError):
            triangle.with_edge_flipped(1, 1)

    def test_flip_accepts_unordered_endpoints(self, path4):
        assert path4.with_edge_flipped(3, 0) == path4.with_edge_flipped(0, 3)

    def test_flip_does_not_mutate_original(self, triangle):
        edges_before = triangle.edge_set()
        triangle.with_edge_flipped(0, 1)
        assert triangle.edge_set() == edges_before

    @given(edge_lists(), st.data())
    @settings(max_examples=60)
    def test_flip_matches_set_semantics(self, n_and_edges, data):
        """The vectorized flip equals the definitional edge-set toggle."""
        n, edges = n_and_edges
        if n < 2:
            return
        graph = Graph(n, edges)
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        if a == b:
            return
        expected = graph.edge_set() ^ {(min(a, b), max(a, b))}
        flipped = graph.with_edge_flipped(a, b)
        assert flipped == Graph(n, sorted(expected))
        # The result must itself be canonical (it skips re-canonicalization).
        u, v = flipped.edge_arrays
        assert np.all(u < v)
        keys = u * n + v
        assert keys.size < 2 or np.all(np.diff(keys) > 0)


class TestTrustedConstructor:
    def test_matches_validating_constructor(self):
        graph = Graph(6, [(0, 1), (0, 2), (1, 2), (3, 5)])
        trusted = Graph._from_canonical(graph.n_nodes, *graph.edge_arrays)
        assert trusted == graph
        assert trusted.edge_set() == graph.edge_set()
        np.testing.assert_array_equal(trusted.degrees, graph.degrees)

    def test_arrays_are_frozen(self):
        graph = Graph._from_canonical(
            4, np.array([0, 1], dtype=np.int64), np.array([2, 3], dtype=np.int64)
        )
        u, _v = graph.edge_arrays
        assert not u.flags.writeable


class TestPickle:
    def test_roundtrip_preserves_value(self, square_with_diagonal):
        import pickle

        clone = pickle.loads(pickle.dumps(square_with_diagonal))
        assert clone == square_with_diagonal
        assert hash(clone) == hash(square_with_diagonal)

    def test_roundtrip_drops_derived_caches(self, triangle):
        import pickle

        triangle.adjacency  # populate caches on the source
        triangle.degrees
        clone = pickle.loads(pickle.dumps(triangle))
        assert clone._adjacency is None
        assert clone._degrees is None
        assert clone._stats is None
        np.testing.assert_array_equal(clone.degrees, triangle.degrees)


class TestGraphProperties:
    @given(edge_lists())
    @settings(max_examples=60)
    def test_canonicalization_invariants(self, n_and_edges):
        n, edges = n_and_edges
        graph = Graph(n, edges)
        u, v = graph.edge_arrays
        # Canonical: u < v everywhere, lexicographically sorted, unique.
        assert np.all(u < v)
        keys = u * n + v
        assert np.all(np.diff(keys) > 0) if keys.size > 1 else True
        # Edge set matches the deduped input.
        expected = {(min(a, b), max(a, b)) for a, b in edges if a != b}
        assert graph.edge_set() == expected

    @given(edge_lists())
    @settings(max_examples=40)
    def test_degree_sum_is_twice_edges(self, n_and_edges):
        n, edges = n_and_edges
        graph = Graph(n, edges)
        assert int(graph.degrees.sum()) == 2 * graph.n_edges

    @given(edge_lists())
    @settings(max_examples=40)
    def test_construction_is_idempotent(self, n_and_edges):
        n, edges = n_and_edges
        once = Graph(n, edges)
        twice = Graph(n, list(once.edges()))
        assert once == twice
