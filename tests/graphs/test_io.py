"""Tests for SNAP edge-list IO."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graphs import Graph, parse_edge_list, read_edge_list, write_edge_list
from repro.graphs.io import edge_list_string


class TestParse:
    def test_basic(self):
        graph, labels = parse_edge_list("0 1\n1 2\n")
        assert graph.n_nodes == 3
        assert graph.n_edges == 2
        assert labels == {0: 0, 1: 1, 2: 2}

    def test_comments_and_blank_lines_skipped(self):
        text = "# header\n\n  # indented comment\n5 7\n"
        graph, labels = parse_edge_list(text)
        assert graph.n_edges == 1
        assert labels == {0: 5, 1: 7}

    def test_sparse_ids_relabelled_densely(self):
        graph, labels = parse_edge_list("100 200\n200 300\n")
        assert graph.n_nodes == 3
        assert sorted(labels.values()) == [100, 200, 300]

    def test_duplicate_and_reversed_edges_collapse(self):
        graph, _ = parse_edge_list("1 2\n2 1\n1 2\n")
        assert graph.n_edges == 1

    def test_self_loops_dropped(self):
        graph, _ = parse_edge_list("1 1\n1 2\n")
        assert graph.n_edges == 1

    def test_empty_text(self):
        graph, labels = parse_edge_list("# nothing\n")
        assert graph.n_nodes == 0
        assert labels == {}

    def test_wrong_token_count_rejected(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            parse_edge_list("1 2 3\n")

    def test_non_integer_rejected(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            parse_edge_list("1 2\na b\n")


class TestRoundtrip:
    def test_write_then_read(self, tmp_path, square_with_diagonal):
        path = tmp_path / "graph.txt"
        write_edge_list(square_with_diagonal, path)
        graph, _ = read_edge_list(path)
        assert graph.edge_set() == square_with_diagonal.edge_set()

    def test_gzip_roundtrip(self, tmp_path, triangle):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            write_edge_list(triangle, handle)
        graph, _ = read_edge_list(path)
        assert graph.edge_set() == triangle.edge_set()

    def test_default_header_records_counts(self, triangle):
        text = edge_list_string(triangle)
        assert text.startswith("# Nodes: 3 Edges: 3")

    def test_custom_header(self, triangle):
        text = edge_list_string(triangle, header="line one\nline two")
        assert "# line one" in text
        assert "# line two" in text

    def test_isolated_nodes_not_written(self, tmp_path):
        graph = Graph(10, [(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        reread, _ = read_edge_list(path)
        assert reread.n_nodes == 2  # SNAP convention: only touched nodes
