"""Tests for structural graph operations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import erdos_renyi_graph, path_graph
from repro.graphs.operations import (
    connected_components,
    induced_subgraph,
    largest_connected_component,
    next_power_of_two_exponent,
    pad_to_power_of_two,
    relabel_random,
)


class TestComponents:
    def test_two_components(self):
        graph = Graph(5, [(0, 1), (1, 2), (3, 4)])
        components = connected_components(graph)
        assert [len(c) for c in components] == [3, 2]

    def test_isolated_nodes_are_components(self):
        graph = Graph(4, [(0, 1)])
        assert len(connected_components(graph)) == 3

    def test_empty_graph(self):
        assert connected_components(Graph(0)) == []

    def test_largest_component_extraction(self):
        graph = Graph(6, [(0, 1), (1, 2), (2, 0), (4, 5)])
        largest = largest_connected_component(graph)
        assert largest.n_nodes == 3
        assert largest.n_edges == 3


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, square_with_diagonal):
        sub = induced_subgraph(square_with_diagonal, np.array([0, 1, 2]))
        assert sub.edge_set() == {(0, 1), (1, 2), (0, 2)}

    def test_relabels_in_given_order(self):
        graph = Graph(4, [(2, 3)])
        sub = induced_subgraph(graph, np.array([3, 2]))
        assert sub.edge_set() == {(0, 1)}

    def test_duplicate_nodes_rejected(self, triangle):
        with pytest.raises(ValidationError):
            induced_subgraph(triangle, np.array([0, 0]))

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(ValidationError):
            induced_subgraph(triangle, np.array([0, 9]))


class TestPadding:
    def test_already_power_of_two(self):
        graph = Graph(8, [(0, 1)])
        padded, k = pad_to_power_of_two(graph)
        assert padded is graph or padded == graph
        assert k == 3

    def test_pads_up(self):
        graph = Graph(5, [(0, 4)])
        padded, k = pad_to_power_of_two(graph)
        assert padded.n_nodes == 8
        assert k == 3
        assert padded.n_edges == 1

    def test_statistics_preserved(self):
        graph = erdos_renyi_graph(100, 0.1, seed=0)
        padded, _ = pad_to_power_of_two(graph)
        np.testing.assert_array_equal(
            np.sort(padded.degrees)[-100:], np.sort(graph.degrees)
        )

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            pad_to_power_of_two(Graph(0))

    @pytest.mark.parametrize(
        "n,expected",
        [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10), (1025, 11)],
    )
    def test_exponent_table(self, n, expected):
        assert next_power_of_two_exponent(n) == expected

    def test_exponent_rejects_zero(self):
        with pytest.raises(ValidationError):
            next_power_of_two_exponent(0)


class TestRelabel:
    def test_preserves_degree_multiset(self):
        graph = path_graph(10)
        shuffled = relabel_random(graph, seed=3)
        np.testing.assert_array_equal(
            np.sort(graph.degrees), np.sort(shuffled.degrees)
        )

    def test_preserves_edge_count(self, er_graph):
        assert relabel_random(er_graph, seed=1).n_edges == er_graph.n_edges

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_component_sizes_invariant(self, seed):
        graph = Graph(7, [(0, 1), (1, 2), (3, 4)])
        shuffled = relabel_random(graph, seed=seed)
        original_sizes = sorted(len(c) for c in connected_components(graph))
        shuffled_sizes = sorted(len(c) for c in connected_components(shuffled))
        assert original_sizes == shuffled_sizes
