"""Failure-injection tests for edge-list IO.

Production libraries live or die by how they handle malformed input;
these tests feed the reader the kinds of damage real SNAP downloads
exhibit (truncation, binary junk, mixed separators) and require clear
errors or correct tolerance.
"""

from __future__ import annotations

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graphs import parse_edge_list, read_edge_list


class TestMalformedInput:
    def test_tabs_and_multiple_spaces_tolerated(self):
        graph, _ = parse_edge_list("1\t2\n3   4\n")
        assert graph.n_edges == 2

    def test_windows_line_endings_tolerated(self):
        graph, _ = parse_edge_list("1 2\r\n2 3\r\n")
        assert graph.n_edges == 2

    def test_trailing_whitespace_tolerated(self):
        graph, _ = parse_edge_list("1 2   \n")
        assert graph.n_edges == 1

    def test_float_ids_rejected(self):
        with pytest.raises(GraphFormatError):
            parse_edge_list("1.5 2\n")

    def test_three_columns_rejected_with_line_number(self):
        with pytest.raises(GraphFormatError, match="line 3"):
            parse_edge_list("1 2\n2 3\n3 4 5\n")

    def test_negative_ids_accepted_as_labels(self):
        # SNAP ids are arbitrary integers; negatives are valid labels that
        # get densely relabelled.
        graph, labels = parse_edge_list("-5 7\n")
        assert graph.n_edges == 1
        assert set(labels.values()) == {-5, 7}

    def test_huge_ids_relabelled(self):
        graph, labels = parse_edge_list(f"{10**15} {2 * 10**15}\n")
        assert graph.n_nodes == 2


class TestFileLevelFailures:
    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            read_edge_list(tmp_path / "absent.txt")

    def test_corrupt_gzip(self, tmp_path):
        path = tmp_path / "broken.txt.gz"
        path.write_bytes(b"definitely not gzip data")
        with pytest.raises(OSError):
            read_edge_list(path)

    def test_truncated_gzip(self, tmp_path):
        path = tmp_path / "trunc.txt.gz"
        payload = gzip.compress(b"1 2\n2 3\n" * 100)
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises((OSError, EOFError)):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        graph, labels = read_edge_list(path)
        assert graph.n_nodes == 0
        assert labels == {}
