"""Smoke tests for the example scripts.

Every example must at least import cleanly and expose ``main``; the two
fast ones run end to end.  (The heavier scenarios — the ε sweep and the
epidemic study — are exercised manually and by the benches; running them
here would dominate the suite's runtime.)
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart",
    "private_release_workflow",
    "estimator_comparison",
    "epsilon_utility_tradeoff",
    "synthetic_epidemic_study",
    "moment_formula_check",
]


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesImportable:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_exposes_main(self, name):
        module = _load_example(name)
        assert callable(module.main)

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_has_module_docstring(self, name):
        module = _load_example(name)
        assert module.__doc__ and len(module.__doc__) > 50


class TestFastExamplesRun:
    def test_quickstart(self, capsys):
        _load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "original graph" in output
        assert "synthetic graph (shareable)" in output
        assert "privacy budget" in output

    def test_moment_formula_check(self, capsys):
        _load_example("moment_formula_check").main(0.9, 0.5, 0.2, 4)
        output = capsys.readouterr().out
        assert "machine precision" in output

    def test_sir_simulation_unit(self):
        # The epidemic example's simulator, on a tiny graph.
        module = _load_example("synthetic_epidemic_study")
        from repro.graphs.generators import barabasi_albert_graph

        graph = barabasi_albert_graph(100, 3, seed=0)
        summary = module.simulate_sir(graph, seed=0)
        assert 0.0 < summary["attack_rate"] <= 1.0
        assert summary["peak_infected_fraction"] <= summary["attack_rate"]
        assert summary["time_to_peak"] >= 0
