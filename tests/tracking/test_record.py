"""Run-record schema round-trip, materialized seeds, and write atomicity."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.scenarios import (
    EstimatorSpec,
    ScenarioSpec,
    run_scenario,
    run_scenarios,
    spawn_seeds,
)
from repro.tracking import (
    SCHEMA_VERSION,
    build_run_record,
    environment_fingerprint,
    list_runs,
    load_run,
    seed_token,
    write_run,
)


def sampling_scenario(name="fixed-skg", size=3, entropy=(11, 7)) -> ScenarioSpec:
    """A fast pure-sampling scenario (no dataset, k=5 SKG draws)."""
    return ScenarioSpec(
        name=name,
        workload=None,
        estimator=EstimatorSpec.create("Fixed", a=0.9, b=0.5, c=0.2, k=5),
        ensemble_size=size,
        seed_policy=spawn_seeds(*entropy),
        measure="synthetic_statistics",
    )


def build_record(**kwargs):
    reports = run_scenarios(
        [sampling_scenario(), sampling_scenario(name="other", entropy=(3,))]
    )
    kwargs.setdefault("created", "2026-08-08T12:00:00Z")
    return build_run_record(reports, **kwargs)


class TestRoundTrip:
    def test_written_record_loads_back_identical(self, tmp_path):
        record = build_record(label="roundtrip")
        path = write_run(record, tmp_path)
        assert load_run(path) == record

    def test_on_disk_layout(self, tmp_path):
        record = build_record(preset="table1")
        path = write_run(record, tmp_path)
        assert (path / "run.json").is_file()
        tables = sorted((path / "metrics").glob("*.json"))
        assert len(tables) == len(record.scenarios)
        payload = json.loads((path / "run.json").read_text())
        # Metric rows live in the per-scenario tables, not in run.json.
        assert all("metrics" not in entry for entry in payload["scenarios"])
        assert all("metrics_file" in entry for entry in payload["scenarios"])
        assert "table1" in path.name

    def test_seeds_are_materialized_spawn_children(self):
        record = build_record()
        entry = record.scenarios[0]
        expected = np.random.SeedSequence([11, 7]).spawn(3)
        assert entry["seeds"] == [seed_token(child) for child in expected]
        assert all(token["kind"] == "seedsequence" for token in entry["seeds"])

    def test_single_scenario_report_carries_seeds_too(self):
        report = run_scenario(sampling_scenario(size=2))
        record = build_run_record([report], created="2026-08-08T12:00:00Z")
        assert len(record.scenarios[0]["seeds"]) == 2

    def test_report_without_seeds_fails_loudly(self):
        report = run_scenario(sampling_scenario(size=2))
        stripped = dataclasses.replace(report, seeds=())
        with pytest.raises(ValidationError, match="materialized seeds"):
            build_run_record([stripped])

    def test_environment_fingerprint_keys(self):
        fingerprint = environment_fingerprint()
        assert set(fingerprint) >= {
            "python",
            "numpy",
            "scipy",
            "platform",
            "cpu_count",
            "counting_backend",
            "chain_backend",
            "pool_mode",
            "n_jobs",
            "trial_retries",
            "trial_timeout",
            "fault_inject",
        }

    def test_fingerprint_captures_fault_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIAL_RETRIES", "2")
        monkeypatch.setenv("REPRO_TRIAL_TIMEOUT", "30")
        monkeypatch.setenv("REPRO_FAULT_INJECT", "trial_error:index=0")
        fingerprint = environment_fingerprint()
        assert fingerprint["trial_retries"] == 2
        assert fingerprint["trial_timeout"] == 30.0
        assert fingerprint["fault_inject"] == "trial_error:index=0"

    def test_cache_attribution_recorded(self, tmp_path):
        cache = tmp_path / "cache"
        cold = run_scenarios([sampling_scenario()], cache=cache)
        resumed = run_scenarios([sampling_scenario()], cache=cache)
        record_cold = build_run_record(cold, created="2026-08-08T12:00:00Z")
        record_resumed = build_run_record(resumed, created="2026-08-08T12:00:01Z")
        assert record_cold.timing["executed"] == 3
        assert record_cold.timing["cached"] == 0
        assert record_resumed.timing["executed"] == 0
        assert record_resumed.timing["cached"] == 3
        assert record_resumed.scenarios[0]["cached_indices"] == [0, 1, 2]

    def test_clean_run_records_zero_failure_attribution(self):
        record = build_record()
        assert record.timing["failed"] == 0
        assert record.timing["retried"] == 0
        assert record.timing["pool_restarts"] == 0
        entry = record.scenarios[0]
        assert entry["failed"] == 0 and entry["failed_indices"] == []
        assert entry["retried"] == 0 and entry["retried_indices"] == []

    def test_failed_trials_attributed_in_the_record(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "trial_error:index=1:attempts=9")
        reports = run_scenarios([sampling_scenario()], on_error="collect")
        record = build_run_record(reports, created="2026-08-08T12:00:00Z")
        entry = record.scenarios[0]
        assert record.timing["failed"] == 1
        assert entry["failed"] == 1 and entry["failed_indices"] == [1]
        # The failed position carries an empty metric row; survivors keep
        # their real metrics.
        assert entry["metrics"][1] == {}
        assert entry["metrics"][0] != {}
        # And the record still round-trips through JSON.
        import json as json_module

        json_module.dumps(dataclasses.asdict(record))

    def test_healed_retry_attributed_and_bit_identical(self, monkeypatch):
        clean = build_run_record(
            run_scenarios([sampling_scenario()]), created="2026-08-08T12:00:00Z"
        )
        monkeypatch.setenv("REPRO_FAULT_INJECT", "trial_error:index=1:attempts=1")
        monkeypatch.setenv("REPRO_TRIAL_RETRIES", "1")
        monkeypatch.setenv("REPRO_TRIAL_BACKOFF", "0")
        healed = build_run_record(
            run_scenarios([sampling_scenario()]), created="2026-08-08T12:00:00Z"
        )
        entry = healed.scenarios[0]
        assert healed.timing["retried"] == 1 and healed.timing["failed"] == 0
        assert entry["retried_indices"] == [1]
        # The retried trial re-derived the same stream: metrics match the
        # clean run bit for bit.
        assert entry["metrics"] == clean.scenarios[0]["metrics"]

    def test_schema_version_guard(self, tmp_path):
        path = write_run(build_record(), tmp_path)
        run_file = path / "run.json"
        payload = json.loads(run_file.read_text())
        payload["schema_version"] = SCHEMA_VERSION + 1
        run_file.write_text(json.dumps(payload))
        with pytest.raises(ValidationError, match="schema version"):
            load_run(path)

    def test_not_a_run_directory(self, tmp_path):
        with pytest.raises(ValidationError, match="not a run directory"):
            load_run(tmp_path)


class TestAtomicity:
    def test_failed_write_leaves_nothing_behind(self, tmp_path):
        record = build_record()
        # An unserializable metric value makes the metrics-table write
        # blow up *before* run.json exists; the staging dir must vanish.
        broken_scenarios = [dict(record.scenarios[0])]
        broken_scenarios[0]["metrics"] = [{"bad": object()}]
        broken = dataclasses.replace(record, scenarios=broken_scenarios)
        with pytest.raises(TypeError):
            write_run(broken, tmp_path)
        assert list(tmp_path.iterdir()) == []
        assert list_runs(tmp_path) == []

    def test_same_name_runs_do_not_collide(self, tmp_path):
        record = build_record()
        first = write_run(record, tmp_path)
        second = write_run(record, tmp_path)
        assert first != second
        assert load_run(first) == load_run(second)
        assert [path.name for path in list_runs(tmp_path)] == sorted(
            [first.name, second.name]
        )

    def test_same_second_runs_list_in_write_order(self, tmp_path):
        # Two runs persisted within the same wall-clock second share the
        # name's timestamp prefix, so lexicographic order would fall
        # through to the label/config-hash part and invert chronology
        # ("zz" written first, "aa" second).  list_runs must order by
        # persist time, not by name.
        first = write_run(build_record(label="zz"), tmp_path)
        second = write_run(build_record(label="aa"), tmp_path)
        assert sorted([first.name, second.name]) != [first.name, second.name]
        assert list_runs(tmp_path) == [first, second]

    def test_cold_and_resumed_share_the_short_hash(self, tmp_path):
        cache = tmp_path / "cache"
        cold = build_run_record(
            run_scenarios([sampling_scenario()], cache=cache),
            created="2026-08-08T12:00:00Z",
        )
        resumed = build_run_record(
            run_scenarios([sampling_scenario()], cache=cache),
            created="2026-08-08T12:00:01Z",
        )
        path_cold = write_run(cold, tmp_path / "runs")
        path_resumed = write_run(resumed, tmp_path / "runs")
        assert path_cold.name.split("__")[-1] == path_resumed.name.split("__")[-1]
