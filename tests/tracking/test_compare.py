"""Comparison semantics: drift, tolerance, NaN, structure, determinism."""

from __future__ import annotations

import copy

import pytest

from repro.tracking import RunRecord, SCHEMA_VERSION, compare_runs, render_comparison


def make_record(metric=1.0, *, created="2026-08-08T12:00:00Z", executed=2, cached=0,
                epsilon=0.2, scenarios=None):
    if scenarios is None:
        scenarios = [
            {
                "name": "cell",
                "workload": None,
                "estimator": {"method": "Fixed", "params": []},
                "epsilon": epsilon,
                "delta": None,
                "ensemble_size": 2,
                "seed_policy": {"kind": "spawn", "entropy": [1], "seeds": []},
                "measure": "synthetic_statistics",
                "measure_params": [],
                "seeds": [
                    {"kind": "seedsequence", "entropy": 1, "spawn_key": [0]},
                    {"kind": "seedsequence", "entropy": 1, "spawn_key": [1]},
                ],
                "metrics": [
                    {"edges": 10, "score": metric},
                    {"edges": 12, "score": metric + 0.5},
                ],
                "executed": executed,
                "cached": cached,
                "cached_indices": list(range(cached)),
            }
        ]
    return RunRecord(
        schema_version=SCHEMA_VERSION,
        created=created,
        label="grid",
        preset=None,
        config={"epsilon": epsilon, "seed": 0},
        environment={"python": "3.12.0", "cpu_count": 4},
        timing={
            "elapsed_seconds": 0.1,
            "executed": executed,
            "cached": cached,
            "n_jobs": 1,
        },
        scenarios=scenarios,
    )


class TestCompareRuns:
    def test_identical_records_have_no_drift(self):
        comparison = compare_runs(make_record(), make_record())
        assert not comparison.has_drift
        assert comparison.drifted == []
        assert comparison.config_delta == {}
        assert len(comparison.drifts) == 2  # edges + score

    def test_metric_drift_flagged_and_tolerance_flips_it(self):
        a, b = make_record(1.0), make_record(1.25)
        strict = compare_runs(a, b)
        assert strict.has_drift
        assert {d.metric for d in strict.drifted} == {"score"}
        assert strict.drifted[0].max_abs_diff == pytest.approx(0.25)
        lenient = compare_runs(a, b, tolerance=0.25)
        assert not lenient.has_drift

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            compare_runs(make_record(), make_record(), tolerance=-1)

    def test_config_delta_is_informational_not_drift(self):
        comparison = compare_runs(make_record(epsilon=0.2), make_record(epsilon=0.5))
        assert comparison.config_delta["epsilon"] == (0.2, 0.5)
        # Metrics are equal, so a differing knob alone is not drift.
        assert not comparison.has_drift

    def test_missing_scenario_is_structure_mismatch(self):
        b = make_record()
        b.scenarios[0] = {**b.scenarios[0], "name": "renamed"}
        comparison = compare_runs(make_record(), b, name_a="left", name_b="right")
        assert comparison.has_drift
        assert any("only in left" in m for m in comparison.structure_mismatches)
        assert any("only in right" in m for m in comparison.structure_mismatches)

    def test_trial_count_mismatch(self):
        b = make_record()
        b.scenarios[0] = {
            **b.scenarios[0],
            "metrics": b.scenarios[0]["metrics"][:1],
        }
        comparison = compare_runs(make_record(), b)
        assert any("trials" in m for m in comparison.structure_mismatches)

    def test_metric_key_mismatch(self):
        b = make_record()
        b.scenarios[0] = {
            **b.scenarios[0],
            "metrics": [{"edges": 10, "other": 1.0}, {"edges": 12, "other": 1.5}],
        }
        comparison = compare_runs(make_record(), b)
        assert any("metric keys differ" in m for m in comparison.structure_mismatches)

    def test_nan_semantics(self):
        nan = float("nan")
        both = compare_runs(make_record(nan), make_record(nan))
        assert not both.has_drift
        one = compare_runs(make_record(nan), make_record(1.0))
        assert one.has_drift
        assert one.drifted[0].max_abs_diff == float("inf")

    def test_cache_attribution(self):
        comparison = compare_runs(
            make_record(executed=2, cached=0),
            make_record(executed=0, cached=2),
            name_a="cold",
            name_b="resumed",
        )
        assert comparison.cache["cold"] == {"executed": 2, "cached": 0}
        assert comparison.cache["resumed"] == {"executed": 0, "cached": 2}

    def test_failure_attribution_defaults_to_zero(self):
        # Records without the v2 failure fields (minimal/pre-v2) read as
        # fault-free.
        comparison = compare_runs(make_record(), make_record())
        assert comparison.failures["A"] == {
            "failed": 0, "retried": 0, "pool_restarts": 0,
        }
        assert comparison.notes == []

    def test_failure_attribution_from_timing(self):
        chaotic = make_record()
        chaotic.timing.update(failed=1, retried=2, pool_restarts=1)
        comparison = compare_runs(
            make_record(), chaotic, name_a="clean", name_b="chaos"
        )
        assert comparison.failures["clean"]["failed"] == 0
        assert comparison.failures["chaos"] == {
            "failed": 1, "retried": 2, "pool_restarts": 1,
        }
        # Attribution alone is informational, never drift.
        assert not comparison.has_drift

    def test_failed_positions_are_excluded_from_drift(self):
        """A failed trial has no metrics — the position is skipped on
        both sides, the surviving trials still compare bit-exactly, and
        the exclusion is reported as a note."""
        chaotic = make_record()
        chaotic.scenarios[0] = {
            **chaotic.scenarios[0],
            "metrics": [chaotic.scenarios[0]["metrics"][0], {}],
            "failed": 1,
            "failed_indices": [1],
        }
        comparison = compare_runs(
            make_record(), chaotic, name_a="clean", name_b="chaos"
        )
        assert not comparison.has_drift
        assert len(comparison.drifts) == 2  # edges + score, survivors only
        assert any("excluded from drift" in note for note in comparison.notes)
        # A surviving-trial disagreement still drifts.
        drifted = make_record(9.0)
        drifted.scenarios[0] = {
            **drifted.scenarios[0],
            "metrics": [drifted.scenarios[0]["metrics"][0], {}],
            "failed": 1,
            "failed_indices": [1],
        }
        assert compare_runs(make_record(), drifted).has_drift


class TestRender:
    def test_render_is_deterministic(self):
        a, b = make_record(), make_record(1.5)
        first = render_comparison(compare_runs(a, b))
        second = render_comparison(
            compare_runs(copy.deepcopy(a), copy.deepcopy(b))
        )
        assert first == second

    def test_render_verdicts_and_attribution(self):
        clean = render_comparison(
            compare_runs(make_record(), make_record(), name_a="x", name_b="y")
        )
        assert "verdict: metrics identical within tolerance 0" in clean
        assert "cache attribution: x 2 executed / 0 cached" in clean
        drifted = render_comparison(compare_runs(make_record(), make_record(9.0)))
        assert "verdict: DRIFT" in drifted
        assert "score" in drifted

    def test_render_failure_attribution_only_when_present(self):
        clean = render_comparison(compare_runs(make_record(), make_record()))
        assert "failure attribution" not in clean
        chaotic = make_record()
        chaotic.timing.update(failed=1, retried=2, pool_restarts=1)
        chaotic.scenarios[0] = {
            **chaotic.scenarios[0],
            "metrics": [chaotic.scenarios[0]["metrics"][0], {}],
            "failed": 1,
            "failed_indices": [1],
        }
        rendered = render_comparison(
            compare_runs(make_record(), chaotic, name_a="clean", name_b="chaos")
        )
        assert (
            "failure attribution: chaos 1 failed / 2 retried / 1 pool restart(s)"
            in rendered
        )
        assert "note:" in rendered and "excluded from drift" in rendered
        assert "verdict: metrics identical" in rendered
