"""Tier-1 acceptance: tracked CLI runs, cache attribution, `repro compare`.

The PR's contract, end to end through ``main()``: running the same
scenario grid twice with ``--track`` — once cold, once cache-resumed —
produces two run directories whose ``repro compare`` reports
bit-identical metrics with the correct executed/cached attribution (the
same invariant the CI ``track-smoke`` job asserts with greps).
"""

from __future__ import annotations

import re

import pytest

from repro.cli import main
from repro.tracking import list_runs, load_run


def run_tracked(tmp_path, capsys, *, seed="0"):
    code = main(
        [
            "run-scenario",
            "--datasets",
            "as20",
            "--estimators",
            "dpdegree",
            "--count",
            "2",
            "--seed",
            seed,
            "--cache-dir",
            str(tmp_path / "cache"),
            "--track",
            "--runs-dir",
            str(tmp_path / "runs"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    match = re.search(r"run directory: (.+)", out)
    assert match, out
    return match.group(1).strip(), out


@pytest.fixture(scope="class")
def tracked_pair(tmp_path_factory):
    """One cold and one cache-resumed tracked run of the same grid."""
    tmp_path = tmp_path_factory.mktemp("tracked")
    outputs = []
    for _ in range(2):
        code = main(
            [
                "run-scenario",
                "--datasets",
                "as20",
                "--estimators",
                "dpdegree",
                "--count",
                "2",
                "--seed",
                "0",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--track",
                "--runs-dir",
                str(tmp_path / "runs"),
            ]
        )
        assert code == 0
    paths = list_runs(tmp_path / "runs")
    assert len(paths) == 2
    return tmp_path, paths


class TestTrackedRuns:
    def test_cold_then_resumed_attribution(self, tracked_pair):
        _tmp_path, (cold, resumed) = tracked_pair
        record_cold = load_run(cold)
        record_resumed = load_run(resumed)
        assert record_cold.timing["executed"] == 2
        assert record_cold.timing["cached"] == 0
        assert record_resumed.timing["executed"] == 0
        assert record_resumed.timing["cached"] == 2
        assert record_resumed.scenarios[0]["cached_indices"] == [0, 1]

    def test_compare_reports_bit_identical_metrics(self, tracked_pair, capsys):
        _tmp_path, (cold, resumed) = tracked_pair
        code = main(["compare", str(cold), str(resumed)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "verdict: metrics identical within tolerance 0" in out
        assert f"cache attribution: {cold.name} 2 executed / 0 cached" in out
        assert f"cache attribution: {resumed.name} 0 executed / 2 cached" in out

    def test_compare_resolves_bare_names_via_runs_dir(self, tracked_pair, capsys):
        tmp_path, (cold, resumed) = tracked_pair
        code = main(
            [
                "compare",
                cold.name,
                resumed.name,
                "--runs-dir",
                str(tmp_path / "runs"),
            ]
        )
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_different_seed_run_drifts(self, tracked_pair, capsys):
        tmp_path, (cold, _resumed) = tracked_pair
        other, _out = run_tracked(tmp_path, capsys, seed="7")
        code = main(["compare", str(cold), other])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "verdict: DRIFT" in out
        assert "config delta:" in out  # the differing seed is surfaced

    def test_runs_list_and_show(self, tracked_pair, capsys):
        tmp_path, paths = tracked_pair
        runs_dir = str(tmp_path / "runs")
        assert main(["runs", "list", "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        for path in paths[:2]:
            assert path.name in out
        assert main(["runs", "list", "--runs-dir", runs_dir, "--paths"]) == 0
        listed = capsys.readouterr().out.splitlines()
        assert str(paths[0]) == listed[0]
        assert main(["runs", "show", str(paths[0])]) == 0
        shown = capsys.readouterr().out
        assert "as20:DPDegree" in shown
        assert "schema_version: 2" in shown

    def test_unknown_run_token_fails_loudly(self, tracked_pair, capsys):
        tmp_path, _paths = tracked_pair
        code = main(
            ["compare", "nope", "also-nope", "--runs-dir", str(tmp_path / "runs")]
        )
        assert code == 1
        assert "neither a run directory nor a run name" in capsys.readouterr().err
