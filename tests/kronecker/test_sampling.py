"""Tests for the exact SKG samplers (grass-hopping vs naive)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.kronecker.initiator import Initiator
from repro.kronecker.moments import expected_edges, expected_statistics
from repro.kronecker.sampling import (
    pair_probability,
    profile_class_size,
    sample_skg,
    sample_skg_naive,
)
from repro.stats.counts import matching_statistics


class TestProfileClasses:
    @given(k=st.integers(min_value=1, max_value=20))
    @settings(max_examples=20)
    def test_class_sizes_partition_all_pairs(self, k):
        total = sum(
            profile_class_size(k, z, x, k - z - x)
            for z in range(k + 1)
            for x in range(k - z + 1)
        )
        n = 2**k
        assert total == n * (n - 1) // 2

    def test_x_zero_classes_are_empty(self):
        # x = 0 means u = v: the diagonal, not a pair.
        assert profile_class_size(4, 4, 0, 0) == 0
        assert profile_class_size(4, 0, 0, 4) == 0

    def test_hand_counted_class(self):
        # k=2, z=1, x=1, o=0: choose the differing level (2 ways), one
        # orientation after the u<v canonicalization -> 2 pairs.
        assert profile_class_size(2, 1, 1, 0) == 2

    def test_profile_sum_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            profile_class_size(3, 1, 1, 0)

    def test_pair_probability(self):
        assert pair_probability((0.9, 0.5, 0.2), 2, 1, 1) == pytest.approx(
            0.9**2 * 0.5 * 0.2
        )


class TestSamplerAgreement:
    """The two samplers must draw from the same distribution."""

    def test_per_pair_frequencies_match_probabilities(self):
        # k=2 (4 nodes, 6 pairs): empirical edge frequency per pair must
        # match the corresponding entry of Theta^{(2)}.
        from repro.kronecker.kronpower import edge_probability_matrix

        theta = Initiator(0.9, 0.5, 0.2)
        probabilities = edge_probability_matrix(theta, 2)
        n_samples = 4000
        counts = np.zeros((4, 4))
        for seed in range(n_samples):
            graph = sample_skg(theta, 2, seed=seed)
            for u, v in graph.edges():
                counts[u, v] += 1
        for u in range(4):
            for v in range(u + 1, 4):
                frequency = counts[u, v] / n_samples
                assert frequency == pytest.approx(
                    probabilities[u, v], abs=4 * np.sqrt(0.25 / n_samples)
                )

    def test_expected_counts_match_closed_forms(self):
        theta = Initiator(0.9, 0.5, 0.2)
        k = 6
        stats = expected_statistics(theta, k)
        rows = np.array(
            [
                tuple(matching_statistics(sample_skg(theta, k, seed=seed)))
                for seed in range(400)
            ]
        )
        means = rows.mean(axis=0)
        assert means[0] == pytest.approx(stats.edges, rel=0.05)
        assert means[1] == pytest.approx(stats.hairpins, rel=0.12)
        assert means[2] == pytest.approx(stats.tripins, rel=0.20)
        assert means[3] == pytest.approx(stats.triangles, rel=0.35)

    def test_naive_expected_edge_count(self):
        theta = Initiator(0.9, 0.5, 0.2)
        k = 5
        target = float(expected_edges(*theta, k))
        counts = [sample_skg_naive(theta, k, seed=s).n_edges for s in range(300)]
        standard_error = np.std(counts) / np.sqrt(len(counts))
        assert abs(np.mean(counts) - target) < 4 * standard_error + 1e-9

    def test_two_samplers_same_mean_edges(self):
        theta = Initiator(0.7, 0.4, 0.3)
        k = 5
        fast = np.mean([sample_skg(theta, k, seed=s).n_edges for s in range(250)])
        naive = np.mean(
            [sample_skg_naive(theta, k, seed=1000 + s).n_edges for s in range(250)]
        )
        # Both unbiased for the same target; allow Monte-Carlo slack.
        assert fast == pytest.approx(naive, rel=0.1)


class TestSamplerProperties:
    def test_node_count(self):
        assert sample_skg((0.9, 0.5, 0.2), 7, seed=0).n_nodes == 128

    def test_deterministic_given_seed(self):
        a = sample_skg((0.9, 0.5, 0.2), 8, seed=11)
        b = sample_skg((0.9, 0.5, 0.2), 8, seed=11)
        assert a == b

    def test_different_seeds_differ(self):
        a = sample_skg((0.9, 0.5, 0.2), 8, seed=1)
        b = sample_skg((0.9, 0.5, 0.2), 8, seed=2)
        assert a != b

    def test_zero_initiator_empty_graph(self):
        assert sample_skg((0.0, 0.0, 0.0), 6, seed=0).n_edges == 0

    def test_all_ones_initiator_complete_graph(self):
        graph = sample_skg((1.0, 1.0, 1.0), 4, seed=0)
        assert graph.n_edges == 16 * 15 // 2

    def test_b_zero_keeps_bit_profiles(self):
        # With b = 0, only pairs with x = 0 could appear - but x >= 1 for
        # every off-diagonal pair, so the graph must be empty.
        graph = sample_skg((1.0, 0.0, 1.0), 6, seed=0)
        assert graph.n_edges == 0

    def test_naive_size_guard(self):
        with pytest.raises(ValidationError):
            sample_skg_naive((0.9, 0.5, 0.2), 13)

    def test_large_k_fast(self):
        # The grass-hopper must handle paper-scale k quickly and exactly.
        graph = sample_skg(Initiator(0.99, 0.45, 0.25), 14, seed=0)
        expected = float(expected_edges(0.99, 0.45, 0.25, 14))
        assert graph.n_nodes == 2**14
        assert 0.8 * expected < graph.n_edges < 1.2 * expected

    @pytest.mark.parametrize(
        "sampler, k", [(sample_skg, 9), (sample_skg_naive, 6)]
    )
    def test_output_is_canonical(self, sampler, k):
        # Both samplers feed the trusted Graph constructor, so the arrays
        # they hand over must already satisfy the canonical invariants.
        graph = sampler((0.9, 0.5, 0.3), k, seed=3)
        u, v = graph.edge_arrays
        assert u.size == graph.n_edges > 0
        assert np.all(u < v)
        keys = u * graph.n_nodes + v
        assert np.all(np.diff(keys) > 0)
        rebuilt = type(graph).from_edge_arrays(graph.n_nodes, u, v)
        assert rebuilt == graph


class TestDistributionalEquality:
    """Stronger check: full per-class edge-count distributions agree."""

    @pytest.mark.parametrize("theta", [(0.9, 0.5, 0.2), (0.6, 0.6, 0.6)])
    def test_edge_count_distribution(self, theta):
        k = 4
        fast = np.array([sample_skg(theta, k, seed=s).n_edges for s in range(800)])
        naive = np.array(
            [sample_skg_naive(theta, k, seed=5000 + s).n_edges for s in range(800)]
        )
        from repro.stats.comparison import ks_distance

        # Two samples from the same discrete distribution: KS should be
        # small (crit value at alpha=0.001 for n=800 each is ~0.097).
        assert ks_distance(fast, naive) < 0.097
