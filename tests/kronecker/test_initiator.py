"""Tests for the Initiator parameter type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kronecker.initiator import Initiator, as_initiator


class TestConstruction:
    def test_valid(self):
        theta = Initiator(0.99, 0.45, 0.25)
        assert (theta.a, theta.b, theta.c) == (0.99, 0.45, 0.25)

    @pytest.mark.parametrize("params", [(1.5, 0, 0), (0, -0.1, 0), (0, 0, 2)])
    def test_out_of_range_rejected(self, params):
        with pytest.raises(ValidationError):
            Initiator(*params)

    def test_boundary_values_allowed(self):
        Initiator(1.0, 0.0, 0.0)
        Initiator(0.0, 1.0, 1.0)

    def test_frozen(self):
        theta = Initiator(0.5, 0.5, 0.5)
        with pytest.raises(AttributeError):
            theta.a = 0.9  # type: ignore[misc]


class TestBehaviour:
    def test_unpacking(self):
        a, b, c = Initiator(0.9, 0.5, 0.1)
        assert (a, b, c) == (0.9, 0.5, 0.1)

    def test_matrix(self):
        matrix = Initiator(0.9, 0.5, 0.1).matrix()
        np.testing.assert_array_equal(matrix, [[0.9, 0.5], [0.5, 0.1]])

    def test_canonical_swaps_when_needed(self):
        theta = Initiator(0.1, 0.5, 0.9).canonical()
        assert theta.a == 0.9
        assert theta.c == 0.1

    def test_canonical_noop_when_ordered(self):
        theta = Initiator(0.9, 0.5, 0.1)
        assert theta.canonical() is theta

    def test_distance_canonicalizes(self):
        assert Initiator(0.1, 0.5, 0.9).distance(Initiator(0.9, 0.5, 0.1)) == 0.0

    def test_expected_degree_factor(self):
        assert Initiator(0.9, 0.5, 0.1).expected_degree_factor() == pytest.approx(2.0)

    def test_sample_convenience(self):
        graph = Initiator(0.9, 0.5, 0.2).sample(4, seed=0)
        assert graph.n_nodes == 16

    def test_repr_contains_values(self):
        assert "0.9900" in repr(Initiator(0.99, 0.45, 0.25))


class TestAsInitiator:
    def test_passthrough(self):
        theta = Initiator(0.5, 0.5, 0.5)
        assert as_initiator(theta) is theta

    def test_from_triple(self):
        theta = as_initiator((0.9, 0.5, 0.1))
        assert theta.b == 0.5

    def test_from_matrix(self):
        theta = as_initiator(np.array([[0.9, 0.5], [0.5, 0.1]]))
        assert (theta.a, theta.b, theta.c) == (0.9, 0.5, 0.1)

    def test_asymmetric_matrix_rejected(self):
        with pytest.raises(ValidationError):
            as_initiator(np.array([[0.9, 0.5], [0.4, 0.1]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            as_initiator([0.9, 0.5])
