"""Cross-backend equivalence harness for the Metropolis chain kernels.

KronFit's gradient estimates ride on the permutation chain of
:class:`repro.kronecker.likelihood.PermutationSampler`, so every
execution engine — the numpy reference and the fused numba / compiled-C
batch kernels of :mod:`repro.native.chain` — must produce **bit-identical**
σ trajectories, profile histograms, and acceptance counts for every
backend × kernel batch size × graph family × θ cell.  This module is that
matrix (PR 3's counting-equivalence pattern, now for chains), plus the
contracts around it:

* the draw contract — proposals are pre-drawn ``(i, j, log u)`` streams
  with ``i == j`` collisions resampled away, so ``proposed`` counts real
  proposals and stream consumption is engine-independent;
* the histogram contract — the incrementally maintained histogram always
  bit-matches an ``edge_profiles`` recompute;
* backend selection — naming an unavailable engine fails loudly, ``auto``
  silently falls back to numpy, ``scipy`` aliases the reference engine;
* KronFit end-to-end — whole fits are bit-identical across engines.

Backends unavailable on the host (e.g. numba not installed) appear as
explicit skips, so the CI numba job variant proves the full matrix ran.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import complete_graph, erdos_renyi_graph, star_graph
from repro.graphs.operations import pad_to_power_of_two
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronfit import KronFitEstimator
from repro.kronecker.likelihood import (
    PermutationSampler,
    edge_profiles,
    profile_histogram,
)
from repro.kronecker.sampling import sample_skg
from repro.native import chain as native_chain
from repro.native.registry import KERNEL_BACKEND_ENV, NATIVE_BACKENDS


def _backend_params() -> list:
    """One param per chain engine; unavailable ones become visible skips."""
    params = [pytest.param("numpy")]
    for name in NATIVE_BACKENDS:
        if native_chain.chain_backend_available(name):
            params.append(pytest.param(name))
        else:
            reason = (
                f"{name} backend unavailable: "
                f"{native_chain.chain_backend_error(name)}"
            )
            params.append(pytest.param(name, marks=pytest.mark.skip(reason=reason)))
    return params


BACKENDS = _backend_params()
BATCH_SIZES = (None, 1, 17)  # whole-run, degenerate, ragged

# Graph families of the matrix: every PermutationSampler graph must have
# exactly 2^k nodes.  Builders are memoized so the full matrix reuses one
# graph per family.
FAMILIES = {
    "skg-k5": lambda: (sample_skg(Initiator(0.9, 0.5, 0.2), 5, seed=3), 5),
    "skg-k7": lambda: (sample_skg(Initiator(0.99, 0.45, 0.25), 7, seed=7), 7),
    "er-padded-k6": lambda: (
        pad_to_power_of_two(erdos_renyi_graph(50, 0.1, seed=11))[0],
        6,
    ),
    "star-16": lambda: (star_graph(16), 4),
    "clique-8": lambda: (complete_graph(8), 3),
    "near-empty-k3": lambda: (Graph(8, [(0, 1)]), 3),
}

THETAS = {
    "skewed": Initiator(0.9, 0.5, 0.2),
    "paper": Initiator(0.99, 0.45, 0.25),
    "flat": Initiator(0.6, 0.6, 0.6),
}

RUN_LENGTHS = (120, 80)  # two run() calls: a checkpointed trajectory
SEED = 20120330


@functools.lru_cache(maxsize=None)
def family_graph(name: str) -> tuple[Graph, int]:
    return FAMILIES[name]()


def run_chain(family: str, theta_name: str, backend: str, batch_size):
    """Run the two-checkpoint chain of one matrix cell; return its trace."""
    graph, k = family_graph(family)
    sampler = PermutationSampler(graph, k, THETAS[theta_name], backend=backend)
    rng = np.random.default_rng(SEED)
    trace = []
    for n_steps in RUN_LENGTHS:
        sampler.run(n_steps, rng, batch_size=batch_size)
        trace.append(sampler.sigma.copy())
    return {
        "trace": trace,
        "histogram": sampler.histogram(),
        "accepted": sampler.accepted,
        "proposed": sampler.proposed,
        "sampler": sampler,
    }


@functools.lru_cache(maxsize=None)
def reference_cell(family: str, theta_name: str):
    """The numpy whole-run oracle of one (family, θ) pair."""
    return run_chain(family, theta_name, "numpy", None)


class TestChainMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("theta_name", sorted(THETAS))
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_cell_bit_identical(self, family, theta_name, backend, batch_size):
        expected = reference_cell(family, theta_name)
        cell = run_chain(family, theta_name, backend, batch_size)
        for step, (got, want) in enumerate(zip(cell["trace"], expected["trace"])):
            np.testing.assert_array_equal(
                got, want, err_msg=f"sigma diverges at checkpoint {step}"
            )
        np.testing.assert_array_equal(cell["histogram"], expected["histogram"])
        assert cell["accepted"] == expected["accepted"]
        assert cell["proposed"] == expected["proposed"] == sum(RUN_LENGTHS)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_incremental_histogram_matches_recompute(self, family, backend):
        """The histogram contract: incremental == edge_profiles recompute."""
        cell = run_chain(family, "skewed", backend, None)
        sampler = cell["sampler"]
        graph, k = family_graph(family)
        z, x, o = edge_profiles(graph, sampler.sigma, k)
        np.testing.assert_array_equal(
            sampler.histogram(), profile_histogram(z, x, o, k)
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sigma_stays_a_permutation(self, backend):
        cell = run_chain("skg-k5", "paper", backend, 13)
        assert sorted(cell["sampler"].sigma.tolist()) == list(range(32))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_theta_update_preserves_equivalence(self, backend):
        """Chains stay identical across set_theta (the KronFit inner loop)."""
        graph, k = family_graph("skg-k5")
        sampler = PermutationSampler(graph, k, THETAS["skewed"], backend=backend)
        reference = PermutationSampler(graph, k, THETAS["skewed"], backend="numpy")
        rng = np.random.default_rng(5)
        reference_rng = np.random.default_rng(5)
        for theta in (THETAS["paper"], THETAS["flat"]):
            sampler.run(60, rng)
            reference.run(60, reference_rng)
            sampler.set_theta(theta)
            reference.set_theta(theta)
        np.testing.assert_array_equal(sampler.sigma, reference.sigma)
        np.testing.assert_array_equal(sampler.histogram(), reference.histogram())
        assert sampler.accepted == reference.accepted


class TestDrawContract:
    def test_no_self_swaps(self):
        rng = np.random.default_rng(0)
        i_nodes, j_nodes, log_u = native_chain.draw_proposal_batch(rng, 4, 5000)
        assert not np.any(i_nodes == j_nodes)
        assert log_u.shape == (5000,)
        assert np.all(log_u <= 0.0)

    def test_deterministic_given_seed(self):
        first = native_chain.draw_proposal_batch(np.random.default_rng(7), 32, 100)
        second = native_chain.draw_proposal_batch(np.random.default_rng(7), 32, 100)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_two_node_graphs_always_propose_the_swap(self):
        """With n=2 every collision resamples to the single distinct pair."""
        rng = np.random.default_rng(1)
        i_nodes, j_nodes, _ = native_chain.draw_proposal_batch(rng, 2, 200)
        assert np.all(i_nodes != j_nodes)
        assert set(np.unique(np.stack([i_nodes, j_nodes]))) == {0, 1}

    def test_single_node_rejected(self):
        with pytest.raises(ValidationError):
            native_chain.draw_proposal_batch(np.random.default_rng(0), 1, 10)

    def test_marginals_are_uniform_over_distinct_pairs(self):
        rng = np.random.default_rng(2)
        i_nodes, j_nodes, _ = native_chain.draw_proposal_batch(rng, 4, 12000)
        pairs = i_nodes * 4 + j_nodes
        counts = np.bincount(pairs, minlength=16).reshape(4, 4)
        assert np.all(np.diag(counts) == 0)
        off_diagonal = counts[~np.eye(4, dtype=bool)]
        assert off_diagonal.min() > 0.8 * off_diagonal.mean()


class TestChainBackendSelection:
    def test_resolution_values(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert native_chain.resolve_chain_backend() in (
            native_chain.available_chain_backends()
        )
        assert native_chain.resolve_chain_backend("numpy") == "numpy"
        # The counting knob's reference name aliases the chain reference,
        # so one REPRO_KERNEL_BACKEND value drives both kernel families.
        assert native_chain.resolve_chain_backend("scipy") == "numpy"

    def test_environment_knob(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "scipy")
        assert native_chain.resolve_chain_backend() == "numpy"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValidationError, match="kernel backend"):
            native_chain.resolve_chain_backend("fortran")

    def test_missing_numba_fails_loudly(self, monkeypatch):
        monkeypatch.setitem(
            native_chain.CHAIN_KERNEL.states,
            "numba",
            (None, "numba is not installed"),
        )
        with pytest.raises(ValidationError, match="numba is not installed"):
            native_chain.resolve_chain_backend("numba")
        graph, k = family_graph("skg-k5")
        with pytest.raises(ValidationError, match="numba is not installed"):
            PermutationSampler(graph, k, THETAS["paper"], backend="numba")

    def test_auto_silently_falls_back_to_numpy(self, monkeypatch):
        for name in NATIVE_BACKENDS:
            monkeypatch.setitem(
                native_chain.CHAIN_KERNEL.states, name, (None, f"{name} disabled")
            )
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "auto")
        assert native_chain.resolve_chain_backend() == "numpy"
        assert native_chain.available_chain_backends() == ("numpy",)
        graph, k = family_graph("near-empty-k3")
        sampler = PermutationSampler(graph, k, THETAS["paper"])
        assert sampler.backend == "numpy"

    @pytest.mark.skipif(
        not any(
            native_chain.chain_backend_available(name) for name in NATIVE_BACKENDS
        ),
        reason="no fused chain backend available on this host",
    )
    def test_auto_prefers_fused_backends(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert native_chain.resolve_chain_backend() != "numpy"


class TestKronFitAcrossBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fit_bit_identical(self, backend):
        """Whole KronFit runs agree exactly: the chain is the only
        stochastic component, and its engines are bit-identical."""
        graph = sample_skg(Initiator(0.9, 0.5, 0.2), 6, seed=1)
        config = dict(
            n_iterations=4,
            warmup_swaps=60,
            n_permutation_samples=2,
            sample_spacing=25,
            seed=3,
        )
        reference = KronFitEstimator(backend="numpy", **config).fit(graph)
        result = KronFitEstimator(backend=backend, **config).fit(graph)
        assert result.initiator == reference.initiator
        assert result.log_likelihoods == reference.log_likelihoods
        assert result.acceptance_rate == reference.acceptance_rate
        assert result.trajectory == reference.trajectory
