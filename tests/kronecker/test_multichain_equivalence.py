"""Equivalence matrix for the batched multi-chain Metropolis kernel.

PR 10's :class:`repro.kronecker.likelihood.MultiChainSampler` advances S
independent permutation chains — each with its own θ, σ, histogram, and
pre-drawn proposal stream — in **one** native call.  The contract is
per-chain bit-identity: every chain of a batched run must reproduce the
solo :class:`PermutationSampler` trajectory it replaces exactly (σ
checkpoints, profile histogram, acceptance and proposal counts), for
every backend × chain count × kernel batch size × θ assignment, on the
same graph families the solo matrix pins
(``test_chain_equivalence.py``).  On top of the matrix:

* thread invariance — ``kernel_threads`` shards data-independent chains,
  so results are bit-identical for any thread count;
* backend selection — naming an unavailable engine fails loudly,
  ``auto`` silently falls back to the numpy reference, ``scipy``
  aliases it (one ``REPRO_KERNEL_BACKEND`` value drives every family);
* KronFit end-to-end — the batched multi-start strategy selects the
  same winner, with bit-identical per-start results, as the PR 5
  pool-fanned strategy it replaces.

Backends unavailable on the host (e.g. numba not installed) appear as
explicit skips, so the CI numba job variant proves the full matrix ran.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import star_graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronfit import KronFitEstimator
from repro.kronecker.likelihood import (
    MultiChainSampler,
    PermutationSampler,
    edge_profiles,
    profile_histogram,
)
from repro.kronecker.sampling import sample_skg
from repro.native import chain as native_chain
from repro.native.registry import (
    KERNEL_BACKEND_ENV,
    KERNEL_THREADS_ENV,
    NATIVE_BACKENDS,
    resolve_kernel_threads,
)


def _backend_params() -> list:
    """One param per multichain engine; unavailable ones become skips."""
    params = [pytest.param("numpy")]
    for name in NATIVE_BACKENDS:
        if native_chain.multichain_backend_available(name):
            params.append(pytest.param(name))
        else:
            reason = (
                f"{name} backend unavailable: "
                f"{native_chain.multichain_backend_error(name)}"
            )
            params.append(pytest.param(name, marks=pytest.mark.skip(reason=reason)))
    return params


BACKENDS = _backend_params()
BATCH_SIZES = (None, 1, 17)  # whole-run, degenerate, ragged
CHAIN_COUNTS = (1, 3, 5)  # S=1 degenerate, exact θ cover, θ reuse

# The θ cycle chains are assigned from (chain s gets THETA_CYCLE[s % 3]),
# the same three cells the solo matrix pins.
THETA_CYCLE = (
    Initiator(0.9, 0.5, 0.2),  # skewed
    Initiator(0.99, 0.45, 0.25),  # paper
    Initiator(0.6, 0.6, 0.6),  # flat
)

FAMILIES = {
    "skg-k5": lambda: (sample_skg(Initiator(0.9, 0.5, 0.2), 5, seed=3), 5),
    "star-16": lambda: (star_graph(16), 4),
    "near-empty-k3": lambda: (Graph(8, [(0, 1)]), 3),
}

RUN_LENGTHS = (120, 80)  # two run() calls: a checkpointed trajectory
SEED = 20120330


@functools.lru_cache(maxsize=None)
def family_graph(name: str) -> tuple[Graph, int]:
    return FAMILIES[name]()


@functools.lru_cache(maxsize=None)
def solo_cell(family: str, chain_index: int):
    """The solo numpy trajectory chain ``chain_index`` must reproduce."""
    graph, k = family_graph(family)
    theta = THETA_CYCLE[chain_index % len(THETA_CYCLE)]
    sampler = PermutationSampler(graph, k, theta, backend="numpy")
    rng = np.random.default_rng(SEED + chain_index)
    trace = []
    for n_steps in RUN_LENGTHS:
        sampler.run(n_steps, rng)
        trace.append(sampler.sigma.copy())
    return {
        "trace": trace,
        "histogram": sampler.histogram(),
        "accepted": sampler.accepted,
        "proposed": sampler.proposed,
    }


def run_multichain(
    family: str, backend: str, batch_size, n_chains: int, threads: int = 1
):
    """One batched run; returns per-chain traces alongside the sampler."""
    graph, k = family_graph(family)
    thetas = [THETA_CYCLE[s % len(THETA_CYCLE)] for s in range(n_chains)]
    sampler = MultiChainSampler(graph, k, thetas, backend=backend, threads=threads)
    rngs = [np.random.default_rng(SEED + s) for s in range(n_chains)]
    traces = [[] for _ in range(n_chains)]
    for n_steps in RUN_LENGTHS:
        sampler.run(n_steps, rngs, batch_size=batch_size)
        for s in range(n_chains):
            traces[s].append(sampler.chain(s).sigma.copy())
    return sampler, traces


class TestMultiChainMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("n_chains", CHAIN_COUNTS)
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_chain_matches_its_solo_trajectory(
        self, family, n_chains, batch_size, backend
    ):
        sampler, traces = run_multichain(family, backend, batch_size, n_chains)
        for s in range(n_chains):
            expected = solo_cell(family, s)
            chain = sampler.chain(s)
            for step, (got, want) in enumerate(zip(traces[s], expected["trace"])):
                np.testing.assert_array_equal(
                    got,
                    want,
                    err_msg=f"chain {s} sigma diverges at checkpoint {step}",
                )
            np.testing.assert_array_equal(chain.histogram(), expected["histogram"])
            assert chain.accepted == expected["accepted"]
            assert chain.proposed == expected["proposed"] == sum(RUN_LENGTHS)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_histograms_stack_and_match_recomputes(self, backend):
        sampler, _ = run_multichain("skg-k5", backend, None, 3)
        graph, k = family_graph("skg-k5")
        stacked = sampler.histograms()
        assert stacked.shape == (3, k + 1, k + 1)
        for s in range(3):
            chain = sampler.chain(s)
            z, x, o = edge_profiles(graph, chain.sigma, k)
            np.testing.assert_array_equal(stacked[s], profile_histogram(z, x, o, k))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_thread_count_is_bit_invariant(self, backend):
        """Chains are data-independent: sharding them across any number
        of kernel threads cannot change a single bit."""
        serial, serial_traces = run_multichain("skg-k5", backend, None, 5, threads=1)
        threaded, threaded_traces = run_multichain(
            "skg-k5", backend, None, 5, threads=4
        )
        for s in range(5):
            for got, want in zip(threaded_traces[s], serial_traces[s]):
                np.testing.assert_array_equal(got, want)
            assert threaded.chain(s).accepted == serial.chain(s).accepted
        np.testing.assert_array_equal(threaded.histograms(), serial.histograms())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_set_theta_preserves_equivalence(self, backend):
        """Chains stay identical across per-chain set_theta (the batched
        KronFit inner loop re-points every chain at its new θ)."""
        graph, k = family_graph("skg-k5")
        sampler = MultiChainSampler(
            graph, k, [THETA_CYCLE[0], THETA_CYCLE[1]], backend=backend
        )
        solo = [
            PermutationSampler(graph, k, THETA_CYCLE[s], backend="numpy")
            for s in range(2)
        ]
        rngs = [np.random.default_rng(40 + s) for s in range(2)]
        solo_rngs = [np.random.default_rng(40 + s) for s in range(2)]
        for theta in (THETA_CYCLE[2], THETA_CYCLE[0]):
            sampler.run(60, rngs)
            for s in range(2):
                solo[s].run(60, solo_rngs[s])
                sampler.set_theta(s, theta)
                solo[s].set_theta(theta)
        for s in range(2):
            np.testing.assert_array_equal(sampler.chain(s).sigma, solo[s].sigma)
            np.testing.assert_array_equal(
                sampler.chain(s).histogram(), solo[s].histogram()
            )
            assert sampler.chain(s).accepted == solo[s].accepted


class TestMultiChainBackendSelection:
    def test_resolution_values(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert native_chain.resolve_multichain_backend() in (
            native_chain.available_multichain_backends()
        )
        assert native_chain.resolve_multichain_backend("numpy") == "numpy"
        assert native_chain.resolve_multichain_backend("scipy") == "numpy"

    def test_missing_numba_fails_loudly(self, monkeypatch):
        monkeypatch.setitem(
            native_chain.MULTICHAIN_KERNEL.states,
            "numba",
            (None, "numba is not installed"),
        )
        with pytest.raises(ValidationError, match="numba is not installed"):
            native_chain.resolve_multichain_backend("numba")
        graph, k = family_graph("skg-k5")
        with pytest.raises(ValidationError, match="numba is not installed"):
            MultiChainSampler(graph, k, [THETA_CYCLE[0]], backend="numba")

    def test_auto_silently_falls_back_to_numpy(self, monkeypatch):
        for name in NATIVE_BACKENDS:
            monkeypatch.setitem(
                native_chain.MULTICHAIN_KERNEL.states,
                name,
                (None, f"{name} disabled"),
            )
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "auto")
        assert native_chain.resolve_multichain_backend() == "numpy"
        assert native_chain.available_multichain_backends() == ("numpy",)
        graph, k = family_graph("near-empty-k3")
        sampler = MultiChainSampler(graph, k, [THETA_CYCLE[1]])
        assert sampler.backend == "numpy"

    @pytest.mark.skipif(
        not any(
            native_chain.multichain_backend_available(name)
            for name in NATIVE_BACKENDS
        ),
        reason="no fused multichain backend available on this host",
    )
    def test_auto_prefers_fused_backends(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert native_chain.resolve_multichain_backend() != "numpy"


class TestKernelThreadsKnob:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv(KERNEL_THREADS_ENV, raising=False)
        assert resolve_kernel_threads() == 1
        assert resolve_kernel_threads(3) == 3
        monkeypatch.setenv(KERNEL_THREADS_ENV, "2")
        assert resolve_kernel_threads() == 2
        assert resolve_kernel_threads(5) == 5

    def test_zero_means_all_usable_cores(self, monkeypatch):
        monkeypatch.delenv(KERNEL_THREADS_ENV, raising=False)
        assert resolve_kernel_threads(0) >= 1

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValidationError):
            resolve_kernel_threads("two")
        with pytest.raises(ValidationError):
            resolve_kernel_threads(True)
        monkeypatch.setenv(KERNEL_THREADS_ENV, "soon")
        with pytest.raises(ValidationError, match=KERNEL_THREADS_ENV):
            resolve_kernel_threads()


class TestMultiChainValidation:
    def test_empty_thetas_rejected(self):
        graph, k = family_graph("skg-k5")
        with pytest.raises(ValidationError):
            MultiChainSampler(graph, k, [])

    def test_sigma_count_mismatch_rejected(self):
        graph, k = family_graph("skg-k5")
        sigma = np.arange(graph.n_nodes)
        with pytest.raises(ValidationError):
            MultiChainSampler(graph, k, [THETA_CYCLE[0]] * 2, sigmas=[sigma])

    def test_rng_count_mismatch_rejected(self):
        graph, k = family_graph("skg-k5")
        sampler = MultiChainSampler(graph, k, [THETA_CYCLE[0]] * 2)
        with pytest.raises(ValidationError):
            sampler.run(10, [np.random.default_rng(0)])


class TestKronFitBatchedMultiStart:
    CONFIG = dict(
        n_iterations=3,
        warmup_swaps=60,
        n_permutation_samples=2,
        sample_spacing=25,
        n_starts=4,
        seed=11,
    )

    @functools.lru_cache(maxsize=None)
    def _graph(self):
        return sample_skg(Initiator(0.9, 0.5, 0.2), 6, seed=1)

    def test_strategy_knob_validated(self):
        with pytest.raises(ValidationError, match="multi_start"):
            KronFitEstimator(multi_start="sideways")
        with pytest.raises(ValidationError):
            KronFitEstimator(kernel_threads=-1)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batched_matches_fanned_multi_start(self, backend):
        """The tentpole contract: one batched native call must select
        the same winner, with bit-identical per-start results, as the
        pool-fanned path it replaces."""
        graph = self._graph()
        fanned = KronFitEstimator(
            backend=backend, multi_start="fanout", **self.CONFIG
        ).fit(graph)
        batched = KronFitEstimator(
            backend=backend, multi_start="batched", **self.CONFIG
        ).fit(graph)
        assert batched.start == fanned.start
        assert batched.n_starts == fanned.n_starts == 4
        assert batched.start_log_likelihoods == fanned.start_log_likelihoods
        assert batched.initiator == fanned.initiator
        assert batched.log_likelihoods == fanned.log_likelihoods
        assert batched.trajectory == fanned.trajectory
        assert batched.acceptance_rate == fanned.acceptance_rate

    def test_kernel_threads_do_not_change_the_fit(self):
        graph = self._graph()
        serial = KronFitEstimator(multi_start="batched", **self.CONFIG).fit(graph)
        threaded = KronFitEstimator(
            multi_start="batched", kernel_threads=4, **self.CONFIG
        ).fit(graph)
        assert threaded.start == serial.start
        assert threaded.initiator == serial.initiator
        assert threaded.start_log_likelihoods == serial.start_log_likelihoods

    def test_generator_seed_consumption_matches(self):
        """Both strategies consume exactly one draw from a Generator
        seed, so downstream code sees the same stream position."""
        graph = self._graph()
        config = {**self.CONFIG}
        del config["seed"]
        results = {}
        for strategy in ("fanout", "batched"):
            rng = np.random.default_rng(77)
            result = KronFitEstimator(
                multi_start=strategy, seed=rng, **config
            ).fit(graph)
            results[strategy] = (result, rng.integers(0, 2**63 - 1))
        fanned, fanned_next = results["fanout"]
        batched, batched_next = results["batched"]
        assert batched.start == fanned.start
        assert batched.initiator == fanned.initiator
        assert batched_next == fanned_next
