"""Tests for dense Kronecker powers and the brute-force oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kronecker.kronpower import (
    brute_force_expected_counts,
    edge_probability_matrix,
    kronecker_power,
)


class TestKroneckerPower:
    def test_k1_is_identity_operation(self):
        matrix = np.array([[0.9, 0.5], [0.5, 0.1]])
        np.testing.assert_array_equal(kronecker_power(matrix, 1), matrix)

    def test_k2_matches_numpy_kron(self):
        matrix = np.array([[0.9, 0.5], [0.5, 0.1]])
        np.testing.assert_allclose(
            kronecker_power(matrix, 2), np.kron(matrix, matrix)
        )

    def test_entry_formula(self):
        # P[u, v] = prod over bit positions of theta[u_i, v_i].
        matrix = np.array([[0.9, 0.5], [0.5, 0.1]])
        power = kronecker_power(matrix, 3)
        u, v = 0b101, 0b011
        expected = matrix[1, 0] * matrix[0, 1] * matrix[1, 1]
        assert power[u, v] == pytest.approx(expected)

    def test_size_guard(self):
        with pytest.raises(ValidationError):
            kronecker_power(np.eye(2), 13)

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            kronecker_power(np.zeros((2, 3)), 2)


class TestEdgeProbabilityMatrix:
    def test_zero_diagonal(self):
        probabilities = edge_probability_matrix((0.9, 0.5, 0.1), 3)
        assert np.all(np.diagonal(probabilities) == 0.0)

    def test_symmetric(self):
        probabilities = edge_probability_matrix((0.9, 0.5, 0.1), 3)
        np.testing.assert_array_equal(probabilities, probabilities.T)


class TestBruteForceCounts:
    def test_k2_hand_check(self):
        # A 2-node graph with a single potential edge of probability p.
        p = 0.37
        matrix = np.array([[0.0, p], [p, 0.0]])
        counts = brute_force_expected_counts(matrix)
        assert counts.edges == pytest.approx(p)
        assert counts.hairpins == pytest.approx(0.0, abs=1e-12)
        assert counts.tripins == pytest.approx(0.0, abs=1e-12)
        assert counts.triangles == pytest.approx(0.0, abs=1e-12)

    def test_triangle_hand_check(self):
        # Three nodes, all pairs probability p: E[Δ] = p³, E[H] = 3p².
        p = 0.5
        matrix = np.full((3, 3), p)
        np.fill_diagonal(matrix, 0.0)
        counts = brute_force_expected_counts(matrix)
        assert counts.edges == pytest.approx(3 * p)
        assert counts.hairpins == pytest.approx(3 * p * p)
        assert counts.triangles == pytest.approx(p**3)
        assert counts.tripins == 0.0

    def test_star_tripins(self):
        # Star of 4 potential edges with probability p each around node 0:
        # E[T] = C(4,3) p³ at the centre.
        p = 0.6
        matrix = np.zeros((5, 5))
        matrix[0, 1:] = p
        matrix[1:, 0] = p
        counts = brute_force_expected_counts(matrix)
        assert counts.tripins == pytest.approx(4 * p**3)

    def test_monte_carlo_agreement(self, rng):
        # Sample many graphs from an arbitrary symmetric P and compare
        # empirical means with the analytic expectations.
        from repro.graphs import Graph
        from repro.stats.counts import matching_statistics

        n = 8
        probabilities = rng.random((n, n)) * 0.5
        probabilities = (probabilities + probabilities.T) / 2
        np.fill_diagonal(probabilities, 0.0)
        expected = brute_force_expected_counts(probabilities)
        totals = np.zeros(4)
        n_samples = 3000
        upper = np.triu_indices(n, k=1)
        for _ in range(n_samples):
            draws = rng.random(len(upper[0])) < probabilities[upper]
            edges = [(int(u), int(v)) for u, v, d in zip(*upper, draws) if d]
            totals += np.array(tuple(matching_statistics(Graph(n, edges))))
        means = totals / n_samples
        np.testing.assert_allclose(means, tuple(expected), rtol=0.15, atol=0.3)

    def test_asymmetric_rejected(self):
        matrix = np.array([[0.0, 0.5], [0.4, 0.0]])
        with pytest.raises(ValidationError):
            brute_force_expected_counts(matrix)

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValidationError):
            brute_force_expected_counts(np.eye(3) * 0.5)
