"""Distributional lock for the grass-hopping sampler.

The equivalence matrix (``test_sampler_equivalence.py``) proves the three
engines agree with each other bit for bit; this module proves the thing
they agree *on* is the right distribution.  Over thousands of draws:

* **Profile-class chi-square** — per-class edge counts of both
  :func:`sample_skg` and :func:`sample_skg_naive` against the exact
  Binomial(class size, a^z b^x c^o) law, and the two samplers against
  each other.  The class decomposition is the sampler's whole structure,
  so this is the sharpest aggregate test the distribution admits.
* **CLT bounds** — total edge counts against the closed-form expectation
  and per-node degrees against the rows of Θ^{⊗k}.
* **Property tests** (hypothesis) for the combinatorial layer —
  :func:`profile_class_size` against brute-force pair enumeration and
  the degenerate corners (k=1, a=0, b=0, c=1, all-ones).

All statistical thresholds sit at roughly the 10⁻⁶ quantile of the null
and every draw is fixed-seed, so the suite is deterministic: a failure
means the distribution moved, not bad luck.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kronecker.initiator import Initiator
from repro.kronecker.kronpower import edge_probability_matrix
from repro.kronecker.moments import expected_edges
from repro.kronecker.sampling import (
    pair_probability,
    profile_class_size,
    sample_skg,
    sample_skg_naive,
)

THETA = Initiator(0.9, 0.5, 0.2)
K = 4
N_DRAWS = 2000


def _popcount(values: np.ndarray, k: int) -> np.ndarray:
    counts = np.zeros_like(values)
    for bit in range(k):
        counts += (values >> bit) & 1
    return counts


def _classes(k: int) -> list[tuple[int, int, int]]:
    """All non-empty profile classes (z, x, o) in ascending (z, x) order."""
    return [
        (z, x, k - z - x)
        for z in range(k + 1)
        for x in range(1, k - z + 1)
    ]


def _class_counts(graph, k: int) -> dict[tuple[int, int], int]:
    """Edges of one draw bucketed by profile class."""
    u, v = graph.edge_arrays
    x = _popcount(u ^ v, k)
    o = _popcount(u & v, k)
    z = k - x - o
    counts: dict[tuple[int, int], int] = {}
    for zi, xi in zip(z.tolist(), x.tolist()):
        counts[(zi, xi)] = counts.get((zi, xi), 0) + 1
    return counts


def _total_class_counts(sampler, k: int, n_draws: int, seed0: int) -> np.ndarray:
    classes = _classes(k)
    index = {(z, x): i for i, (z, x, _) in enumerate(classes)}
    totals = np.zeros(len(classes), dtype=np.int64)
    for draw in range(n_draws):
        for (z, x), count in _class_counts(sampler(seed0 + draw), k).items():
            totals[index[(z, x)]] += count
    return totals


@pytest.fixture(scope="module")
def fast_totals() -> np.ndarray:
    return _total_class_counts(
        lambda seed: sample_skg(THETA, K, seed=seed), K, N_DRAWS, 10_000
    )


@pytest.fixture(scope="module")
def naive_totals() -> np.ndarray:
    return _total_class_counts(
        lambda seed: sample_skg_naive(THETA, K, seed=seed), K, N_DRAWS, 50_000
    )


def _chi_square_against_exact(totals: np.ndarray) -> float:
    """Σ z² of per-class totals against Binomial(M·size, p) — ~χ²(C)."""
    stat = 0.0
    for i, (z, x, o) in enumerate(_classes(K)):
        size = profile_class_size(K, z, x, o)
        p = pair_probability(THETA, z, x, o)
        n = N_DRAWS * size
        mean, var = n * p, n * p * (1.0 - p)
        stat += (totals[i] - mean) ** 2 / var
    return float(stat)


class TestProfileClassChiSquare:
    # k=4 has 10 non-empty classes; χ²(10) crosses 60 with probability
    # ~3·10⁻⁹ — far beyond any plausible seed unluckiness.
    THRESHOLD = 60.0

    def test_fast_sampler_matches_exact_law(self, fast_totals):
        assert _chi_square_against_exact(fast_totals) < self.THRESHOLD

    def test_naive_sampler_matches_exact_law(self, naive_totals):
        assert _chi_square_against_exact(naive_totals) < self.THRESHOLD

    def test_samplers_match_each_other(self, fast_totals, naive_totals):
        """Two-sample per-class comparison: fast vs naive totals."""
        stat = 0.0
        for i, (z, x, o) in enumerate(_classes(K)):
            size = profile_class_size(K, z, x, o)
            p = pair_probability(THETA, z, x, o)
            var = 2.0 * N_DRAWS * size * p * (1.0 - p)
            stat += (int(fast_totals[i]) - int(naive_totals[i])) ** 2 / var
        assert stat < self.THRESHOLD

    def test_every_class_was_hit(self, fast_totals):
        """All 10 classes carry enough mass to make the χ² meaningful."""
        assert fast_totals.min() > 5


class TestCLTBounds:
    def test_mean_edge_count_fast(self, fast_totals):
        mean_edges = float(fast_totals.sum()) / N_DRAWS
        expected = expected_edges(THETA.a, THETA.b, THETA.c, K)
        sigma = np.sqrt(expected / N_DRAWS)  # Var ≤ E for a Poisson-binomial
        assert abs(mean_edges - expected) < 5.0 * sigma

    def test_mean_edge_count_large_k(self):
        """One big-regime CLT point: the paper's θ at k=14 (~1 draw)."""
        theta = Initiator(0.99, 0.45, 0.25)
        graph = sample_skg(theta, 14, seed=20120330)
        expected = expected_edges(theta.a, theta.b, theta.c, 14)
        assert abs(graph.n_edges - expected) < 5.0 * np.sqrt(expected)

    def test_per_node_degrees_match_kronecker_rows(self):
        """Mean degree of every node tracks its row sum of Θ^{⊗k}."""
        probabilities = edge_probability_matrix(THETA, K)
        np.fill_diagonal(probabilities, 0.0)
        expected = probabilities.sum(axis=1)
        variance = (probabilities * (1.0 - probabilities)).sum(axis=1)
        degrees = np.zeros(2**K)
        n_draws = 1500
        for draw in range(n_draws):
            graph = sample_skg(THETA, K, seed=90_000 + draw)
            u, v = graph.edge_arrays
            np.add.at(degrees, u, 1.0)
            np.add.at(degrees, v, 1.0)
        z_scores = (degrees / n_draws - expected) / np.sqrt(variance / n_draws)
        # Σ z² over 16 nodes ~ χ²(16); 75 is the ~10⁻⁸ quantile.
        assert float(np.sum(z_scores**2)) < 75.0


class TestCombinatorialProperties:
    @given(
        k=st.integers(min_value=1, max_value=6),
        z=st.integers(min_value=0, max_value=6),
        x=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=60)
    def test_class_size_matches_brute_force(self, k, z, x):
        o = k - z - x
        if o < 0:
            return
        count = 0
        for u in range(2**k):
            for v in range(u + 1, 2**k):
                differs = bin(u ^ v).count("1")
                ones = bin(u & v).count("1")
                if differs == x and ones == o:
                    count += 1
        assert profile_class_size(k, z, x, o) == count

    @given(
        a=st.floats(min_value=0.0, max_value=1.0),
        b=st.floats(min_value=0.0, max_value=1.0),
        c=st.floats(min_value=0.0, max_value=1.0),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60)
    def test_pair_probability_is_the_product(self, a, b, c, k):
        theta = Initiator(a, b, c)
        z = k // 2
        x = max(1, k - z - k // 3)
        o = k - z - x
        if o < 0:
            return
        assert pair_probability(theta, z, x, o) == pytest.approx(
            a**z * b**x * c**o
        )

    def test_k_equals_one(self):
        # Two nodes, one class (z=0, x=1, o=0), one pair.
        assert _classes(1) == [(0, 1, 0)]
        assert profile_class_size(1, 0, 1, 0) == 1
        assert pair_probability(THETA, 0, 1, 0) == pytest.approx(THETA.b)
        graph = sample_skg(Initiator(1.0, 1.0, 1.0), 1, seed=0)
        assert graph.n_nodes == 2 and graph.n_edges == 1

    def test_a_zero_kills_all_z_classes(self):
        theta = Initiator(0.0, 0.8, 0.9)
        for k in (2, 5):
            graph = sample_skg(theta, k, seed=1)
            u, v = graph.edge_arrays
            # Every surviving edge has z = 0: no level where both bits are 0.
            z = k - _popcount(u ^ v, k) - _popcount(u & v, k)
            assert graph.n_edges == 0 or int(z.max()) == 0
        assert pair_probability(theta, 1, 1, 0) == 0.0
        assert pair_probability(theta, 0, 1, 1) == pytest.approx(0.8 * 0.9)

    def test_b_zero_draws_no_edges(self):
        # x ≥ 1 for every pair, so b = 0 zeroes every class probability.
        graph = sample_skg(Initiator(0.9, 0.0, 0.9), 6, seed=2)
        assert graph.n_edges == 0

    def test_all_ones_draws_the_complete_graph(self):
        n = 2**3
        graph = sample_skg(Initiator(1.0, 1.0, 1.0), 3, seed=3)
        assert graph.n_edges == n * (n - 1) // 2

    def test_c_one_keeps_probabilities_valid(self):
        theta = Initiator(0.9, 0.5, 1.0)
        for z, x, o in _classes(3):
            p = pair_probability(theta, z, x, o)
            assert 0.0 <= p <= 1.0
        graph = sample_skg(theta, 3, seed=4)
        assert 0 <= graph.n_edges <= 28
