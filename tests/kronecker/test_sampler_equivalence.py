"""Cross-backend equivalence harness for the grass-hopping sampler kernels.

:func:`repro.kronecker.sampling.sample_skg` executes its per-class Floyd
selection + combination unranking on one of three engines — the pure
Python reference and the fused numba / compiled-C kernels of
:mod:`repro.native.sampling` — behind the same ``REPRO_KERNEL_BACKEND``
knob as the counting and chain kernels.  All engines consume identical
pre-drawn streams (the draw contract), so the sampled graph must be
**bit-identical** across engines for every (seed, k, initiator) cell.
This module is that matrix (the chain-equivalence pattern of
``test_chain_equivalence.py``, now for the sampler), plus the selection
knob's contracts: naming an unavailable engine fails loudly, ``auto``
silently falls back to the reference, ``scipy`` aliases it.

Backends unavailable on the host (e.g. numba not installed) appear as
explicit skips, so the CI numba job variant proves the full matrix ran.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg, sample_skg_naive
from repro.native import sampling as native_sampling
from repro.native.registry import KERNEL_BACKEND_ENV, NATIVE_BACKENDS


def _backend_params() -> list:
    """One param per sampler engine; unavailable ones become visible skips."""
    params = [pytest.param("numpy")]
    for name in NATIVE_BACKENDS:
        if native_sampling.sampler_backend_available(name):
            params.append(pytest.param(name))
        else:
            reason = (
                f"{name} backend unavailable: "
                f"{native_sampling.sampler_backend_error(name)}"
            )
            params.append(pytest.param(name, marks=pytest.mark.skip(reason=reason)))
    return params


BACKENDS = _backend_params()

# The equivalence matrix: paper-scale cells, dense and sparse initiators,
# and a large-k cell kept cheap by a sparse initiator (the paper's θ at
# k=20 draws ~2·10⁶ edges; (0.6, 0.3, 0.1) draws a few hundred while
# still exercising every class-size magnitude and the hash table reuse).
CELLS = {
    "paper-k8": (Initiator(0.99, 0.45, 0.25), 8),
    "paper-k12": (Initiator(0.99, 0.45, 0.25), 12),
    "paper-k14": (Initiator(0.99, 0.45, 0.25), 14),
    "skewed-k10": (Initiator(0.9, 0.5, 0.2), 10),
    "flat-k9": (Initiator(0.6, 0.6, 0.6), 9),
    "dense-k6": (Initiator(0.95, 0.8, 0.7), 6),
    "sparse-k20": (Initiator(0.6, 0.3, 0.1), 20),
    "tiny-k1": (Initiator(0.9, 0.5, 0.2), 1),
    "zero-b-k8": (Initiator(0.9, 0.0, 0.4), 8),
}

SEEDS = (0, 7, 20120330)


@functools.lru_cache(maxsize=None)
def reference_graph(cell: str, seed: int):
    theta, k = CELLS[cell]
    return sample_skg(theta, k, seed=seed, backend="numpy")


class TestSamplerMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("cell", sorted(CELLS))
    def test_cell_bit_identical(self, cell, seed, backend):
        theta, k = CELLS[cell]
        expected = reference_graph(cell, seed)
        graph = sample_skg(theta, k, seed=seed, backend=backend)
        assert graph.n_nodes == expected.n_nodes == 2**k
        assert graph.n_edges == expected.n_edges
        for got, want in zip(graph.edge_arrays, expected.edge_arrays):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rng_stream_consumption_is_engine_independent(self, backend):
        """The draw contract's point: after sampling, identical generator
        states — callers interleaving other draws stay reproducible."""
        theta, k = CELLS["paper-k8"]
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        sample_skg(theta, k, seed=rng_a, backend="numpy")
        sample_skg(theta, k, seed=rng_b, backend=backend)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_graphs_are_canonical_and_simple(self, backend):
        theta, k = CELLS["skewed-k10"]
        graph = sample_skg(theta, k, seed=5, backend=backend)
        u, v = graph.edge_arrays
        assert np.all(u < v)  # zero diagonal, upper triangle
        keys = (u.astype(np.int64) << k) | v.astype(np.int64)
        assert np.all(np.diff(keys) > 0)  # sorted, no duplicate pairs

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_draw(self, backend):
        """An all-but-zero initiator can draw no edges at small k."""
        graph = sample_skg(Initiator(1e-12, 1e-12, 1e-12), 2, seed=0, backend=backend)
        assert graph.n_edges == 0
        assert graph.n_nodes == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_naive_distributionally_cheap_smoke(self, backend):
        """A quick same-order-of-magnitude check against the O(N²) oracle
        (the real distributional suite lives in
        ``test_sampler_distribution.py``)."""
        theta, k = Initiator(0.9, 0.5, 0.2), 6
        fast = np.mean(
            [sample_skg(theta, k, seed=s, backend=backend).n_edges for s in range(20)]
        )
        naive = np.mean(
            [sample_skg_naive(theta, k, seed=s).n_edges for s in range(20)]
        )
        assert abs(fast - naive) / naive < 0.25


class TestSamplerBackendSelection:
    def test_resolution_values(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert native_sampling.resolve_sampler_backend() in (
            native_sampling.available_sampler_backends()
        )
        assert native_sampling.resolve_sampler_backend("numpy") == "numpy"
        # One REPRO_KERNEL_BACKEND value drives all three kernel families,
        # so the counting knob's reference name aliases the sampler's.
        assert native_sampling.resolve_sampler_backend("scipy") == "numpy"

    def test_environment_knob(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "scipy")
        assert native_sampling.resolve_sampler_backend() == "numpy"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValidationError, match="kernel backend"):
            native_sampling.resolve_sampler_backend("fortran")

    def test_missing_numba_fails_loudly(self, monkeypatch):
        monkeypatch.setitem(
            native_sampling.SAMPLER_KERNEL.states,
            "numba",
            (None, "numba is not installed"),
        )
        with pytest.raises(ValidationError, match="numba is not installed"):
            native_sampling.resolve_sampler_backend("numba")
        with pytest.raises(ValidationError, match="numba is not installed"):
            sample_skg(Initiator(0.9, 0.5, 0.2), 4, seed=0, backend="numba")

    def test_auto_silently_falls_back_to_numpy(self, monkeypatch):
        for name in NATIVE_BACKENDS:
            monkeypatch.setitem(
                native_sampling.SAMPLER_KERNEL.states,
                name,
                (None, f"{name} disabled"),
            )
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "auto")
        assert native_sampling.resolve_sampler_backend() == "numpy"
        assert native_sampling.available_sampler_backends() == ("numpy",)
        graph = sample_skg(Initiator(0.9, 0.5, 0.2), 4, seed=0)
        assert graph.n_nodes == 16

    @pytest.mark.skipif(
        not any(
            native_sampling.sampler_backend_available(name)
            for name in NATIVE_BACKENDS
        ),
        reason="no fused sampler backend available on this host",
    )
    def test_auto_prefers_fused_backends(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert native_sampling.resolve_sampler_backend() != "numpy"
