"""Tests for the KronFit likelihood machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.likelihood import (
    PermutationSampler,
    ProfileLikelihood,
    degree_matched_initial_sigma,
    edge_profiles,
    exact_log_likelihood,
    profile_histogram,
)
from repro.kronecker.sampling import sample_skg


@pytest.fixture
def small_skg() -> Graph:
    return sample_skg(Initiator(0.9, 0.5, 0.2), 5, seed=3)


class TestEdgeProfiles:
    def test_identity_permutation_profiles(self):
        graph = Graph(4, [(0, 3), (1, 2)])
        z, x, o = edge_profiles(graph, np.arange(4), k=2)
        # (0,3): bits 00 vs 11 -> z=0, x=2, o=0; (1,2): 01 vs 10 -> x=2.
        np.testing.assert_array_equal(z, [0, 0])
        np.testing.assert_array_equal(x, [2, 2])
        np.testing.assert_array_equal(o, [0, 0])

    def test_profiles_sum_to_k(self, small_skg):
        k = 5
        z, x, o = edge_profiles(small_skg, np.arange(small_skg.n_nodes), k)
        np.testing.assert_array_equal(z + x + o, np.full(small_skg.n_edges, k))

    def test_wrong_size_graph_rejected(self):
        with pytest.raises(ValidationError):
            edge_profiles(Graph(3, [(0, 1)]), np.arange(3), k=2)

    def test_wrong_sigma_shape_rejected(self, small_skg):
        with pytest.raises(ValidationError):
            edge_profiles(small_skg, np.arange(4), k=5)

    def test_histogram_total_is_edge_count(self, small_skg):
        k = 5
        z, x, o = edge_profiles(small_skg, np.arange(small_skg.n_nodes), k)
        histogram = profile_histogram(z, x, o, k)
        assert histogram.sum() == small_skg.n_edges


class TestProfileLikelihoodValue:
    def test_matches_exact_on_sparse_graph(self, small_skg):
        # The Taylor approximation of the non-edge term is accurate when
        # all P_uv are small; compare against the O(N^2) exact likelihood.
        theta = Initiator(0.6, 0.3, 0.1)
        k = 5
        sigma = np.arange(small_skg.n_nodes)
        z, x, o = edge_profiles(small_skg, sigma, k)
        likelihood = ProfileLikelihood(profile_histogram(z, x, o, k), k)
        approximate = likelihood.log_likelihood(theta)
        exact = exact_log_likelihood(theta, small_skg, sigma, k)
        assert approximate == pytest.approx(exact, rel=0.02)

    def test_histogram_shape_validated(self):
        with pytest.raises(ValidationError):
            ProfileLikelihood(np.zeros((3, 4)), k=3)

    def test_likelihood_finite_at_extreme_parameters(self, small_skg):
        k = 5
        sigma = np.arange(small_skg.n_nodes)
        z, x, o = edge_profiles(small_skg, sigma, k)
        likelihood = ProfileLikelihood(profile_histogram(z, x, o, k), k)
        assert np.isfinite(likelihood.log_likelihood(Initiator(1.0, 1.0, 1.0)))
        assert np.isfinite(likelihood.log_likelihood(Initiator(0.0, 0.0, 0.0)))


class TestProfileLikelihoodGradient:
    def test_matches_finite_differences(self, small_skg):
        theta = Initiator(0.7, 0.4, 0.2)
        k = 5
        sigma = np.arange(small_skg.n_nodes)
        z, x, o = edge_profiles(small_skg, sigma, k)
        likelihood = ProfileLikelihood(profile_histogram(z, x, o, k), k)
        gradient = likelihood.gradient(theta)
        step = 1e-6
        for index, name in enumerate("abc"):
            params = {"a": theta.a, "b": theta.b, "c": theta.c}
            params[name] += step
            bumped = Initiator(**params)
            numeric = (
                likelihood.log_likelihood(bumped) - likelihood.log_likelihood(theta)
            ) / step
            assert gradient[index] == pytest.approx(numeric, rel=1e-3, abs=1e-2)


class TestPermutationSampler:
    def test_swap_delta_matches_full_recompute(self, small_skg):
        theta = Initiator(0.7, 0.4, 0.2)
        sampler = PermutationSampler(small_skg, 5, theta)
        rng = np.random.default_rng(0)
        for _ in range(25):
            i = int(rng.integers(0, small_skg.n_nodes))
            j = int(rng.integers(0, small_skg.n_nodes))
            if i == j:
                continue
            before = sampler.edge_term()
            delta = sampler._swap_delta(i, j)
            sampler.sigma[i], sampler.sigma[j] = sampler.sigma[j], sampler.sigma[i]
            after = sampler.edge_term()
            sampler.sigma[i], sampler.sigma[j] = sampler.sigma[j], sampler.sigma[i]
            assert delta == pytest.approx(after - before, rel=1e-9, abs=1e-9)

    def test_sigma_stays_a_permutation(self, small_skg):
        sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
        sampler.run(500, np.random.default_rng(1))
        assert sorted(sampler.sigma.tolist()) == list(range(small_skg.n_nodes))

    def test_acceptance_counting(self, small_skg):
        # Every draw-contract proposal is a real swap (i == j is resampled
        # away), so `proposed` counts exactly the requested steps.
        sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
        sampler.run(300, np.random.default_rng(2))
        assert sampler.proposed == 300
        assert 0 <= sampler.accepted <= sampler.proposed

    def test_step_counts_every_proposal(self, small_skg):
        sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
        rng = np.random.default_rng(4)
        outcomes = [sampler.step(rng) for _ in range(50)]
        assert sampler.proposed == 50
        assert sampler.accepted == sum(outcomes)

    def test_histogram_maintained_incrementally(self, small_skg):
        from repro.kronecker.likelihood import edge_profiles, profile_histogram

        sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
        sampler.run(400, np.random.default_rng(6))
        z, x, o = edge_profiles(small_skg, sampler.sigma, 5)
        np.testing.assert_array_equal(
            sampler.histogram(), profile_histogram(z, x, o, 5)
        )

    def test_histogram_total_stays_edge_count(self, small_skg):
        sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
        sampler.run(200, np.random.default_rng(8))
        assert sampler.histogram().sum() == small_skg.n_edges

    def test_set_sigma_rebuilds_histogram(self, small_skg):
        sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
        sampler.run(100, np.random.default_rng(9))
        fresh = np.arange(small_skg.n_nodes, dtype=np.int64)
        sampler.set_sigma(fresh)
        other = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2), sigma=fresh)
        np.testing.assert_array_equal(sampler.histogram(), other.histogram())

    def test_run_batch_size_does_not_change_the_trajectory(self, small_skg):
        results = []
        for batch_size in (None, 1, 23):
            sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
            sampler.run(250, np.random.default_rng(10), batch_size=batch_size)
            results.append((sampler.sigma.copy(), sampler.accepted))
        for sigma, accepted in results[1:]:
            np.testing.assert_array_equal(sigma, results[0][0])
            assert accepted == results[0][1]

    def test_wrong_graph_size_rejected(self):
        with pytest.raises(ValidationError):
            PermutationSampler(Graph(3, [(0, 1)]), 2, Initiator(0.5, 0.5, 0.5))

    def test_negative_steps_rejected(self, small_skg):
        sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
        with pytest.raises(ValidationError):
            sampler.run(-1, np.random.default_rng(0))


class TestInitialSigma:
    def test_is_permutation(self, small_skg):
        sigma = degree_matched_initial_sigma(small_skg, 5)
        assert sorted(sigma.tolist()) == list(range(32))

    def test_is_permutation_across_families(self):
        from repro.graphs.generators import complete_graph, star_graph

        for graph, k in (
            (star_graph(16), 4),
            (complete_graph(8), 3),
            (Graph(8, [(0, 1)]), 3),
            (Graph(4), 2),  # no edges: all degrees tie
        ):
            sigma = degree_matched_initial_sigma(graph, k)
            assert sorted(sigma.tolist()) == list(range(graph.n_nodes))

    def test_highest_degree_gets_fewest_one_bits(self, small_skg):
        sigma = degree_matched_initial_sigma(small_skg, 5)
        top_node = int(np.argmax(small_skg.degrees))
        assert sigma[top_node] == 0  # id 0 has popcount 0: highest expected degree

    def test_popcount_rank_breaks_id_ties_by_value(self):
        # All degrees equal (clique): nodes rank by index, so node i gets
        # the i-th id in (popcount, value) order — 0; 1, 2, 4; 3, 5, 6; 7.
        from repro.graphs.generators import complete_graph

        sigma = degree_matched_initial_sigma(complete_graph(8), 3)
        assert sigma.tolist() == [0, 1, 2, 4, 3, 5, 6, 7]

    def test_duplicate_degrees_rank_stably_by_node_index(self):
        # Leaves of a star all tie: the stable sort must hand them ids in
        # node order, and repeated calls must agree exactly.
        from repro.graphs.generators import star_graph

        graph = star_graph(8)
        sigma = degree_matched_initial_sigma(graph, 3)
        assert sigma[0] == 0  # the hub takes the highest-expected-degree id
        leaves = sigma[1:]
        assert leaves.tolist() == [1, 2, 4, 3, 5, 6, 7]
        np.testing.assert_array_equal(
            sigma, degree_matched_initial_sigma(star_graph(8), 3)
        )
