"""Tests for the KronFit likelihood machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.likelihood import (
    PermutationSampler,
    ProfileLikelihood,
    degree_matched_initial_sigma,
    edge_profiles,
    exact_log_likelihood,
    profile_histogram,
)
from repro.kronecker.sampling import sample_skg


@pytest.fixture
def small_skg() -> Graph:
    return sample_skg(Initiator(0.9, 0.5, 0.2), 5, seed=3)


class TestEdgeProfiles:
    def test_identity_permutation_profiles(self):
        graph = Graph(4, [(0, 3), (1, 2)])
        z, x, o = edge_profiles(graph, np.arange(4), k=2)
        # (0,3): bits 00 vs 11 -> z=0, x=2, o=0; (1,2): 01 vs 10 -> x=2.
        np.testing.assert_array_equal(z, [0, 0])
        np.testing.assert_array_equal(x, [2, 2])
        np.testing.assert_array_equal(o, [0, 0])

    def test_profiles_sum_to_k(self, small_skg):
        k = 5
        z, x, o = edge_profiles(small_skg, np.arange(small_skg.n_nodes), k)
        np.testing.assert_array_equal(z + x + o, np.full(small_skg.n_edges, k))

    def test_wrong_size_graph_rejected(self):
        with pytest.raises(ValidationError):
            edge_profiles(Graph(3, [(0, 1)]), np.arange(3), k=2)

    def test_wrong_sigma_shape_rejected(self, small_skg):
        with pytest.raises(ValidationError):
            edge_profiles(small_skg, np.arange(4), k=5)

    def test_histogram_total_is_edge_count(self, small_skg):
        k = 5
        z, x, o = edge_profiles(small_skg, np.arange(small_skg.n_nodes), k)
        histogram = profile_histogram(z, x, o, k)
        assert histogram.sum() == small_skg.n_edges


class TestProfileLikelihoodValue:
    def test_matches_exact_on_sparse_graph(self, small_skg):
        # The Taylor approximation of the non-edge term is accurate when
        # all P_uv are small; compare against the O(N^2) exact likelihood.
        theta = Initiator(0.6, 0.3, 0.1)
        k = 5
        sigma = np.arange(small_skg.n_nodes)
        z, x, o = edge_profiles(small_skg, sigma, k)
        likelihood = ProfileLikelihood(profile_histogram(z, x, o, k), k)
        approximate = likelihood.log_likelihood(theta)
        exact = exact_log_likelihood(theta, small_skg, sigma, k)
        assert approximate == pytest.approx(exact, rel=0.02)

    def test_histogram_shape_validated(self):
        with pytest.raises(ValidationError):
            ProfileLikelihood(np.zeros((3, 4)), k=3)

    def test_likelihood_finite_at_extreme_parameters(self, small_skg):
        k = 5
        sigma = np.arange(small_skg.n_nodes)
        z, x, o = edge_profiles(small_skg, sigma, k)
        likelihood = ProfileLikelihood(profile_histogram(z, x, o, k), k)
        assert np.isfinite(likelihood.log_likelihood(Initiator(1.0, 1.0, 1.0)))
        assert np.isfinite(likelihood.log_likelihood(Initiator(0.0, 0.0, 0.0)))


class TestProfileLikelihoodGradient:
    def test_matches_finite_differences(self, small_skg):
        theta = Initiator(0.7, 0.4, 0.2)
        k = 5
        sigma = np.arange(small_skg.n_nodes)
        z, x, o = edge_profiles(small_skg, sigma, k)
        likelihood = ProfileLikelihood(profile_histogram(z, x, o, k), k)
        gradient = likelihood.gradient(theta)
        step = 1e-6
        for index, name in enumerate("abc"):
            params = {"a": theta.a, "b": theta.b, "c": theta.c}
            params[name] += step
            bumped = Initiator(**params)
            numeric = (
                likelihood.log_likelihood(bumped) - likelihood.log_likelihood(theta)
            ) / step
            assert gradient[index] == pytest.approx(numeric, rel=1e-3, abs=1e-2)


class TestPermutationSampler:
    def test_swap_delta_matches_full_recompute(self, small_skg):
        theta = Initiator(0.7, 0.4, 0.2)
        sampler = PermutationSampler(small_skg, 5, theta)
        rng = np.random.default_rng(0)
        for _ in range(25):
            i = int(rng.integers(0, small_skg.n_nodes))
            j = int(rng.integers(0, small_skg.n_nodes))
            if i == j:
                continue
            before = sampler.edge_term()
            delta = sampler._swap_delta(i, j)
            sampler.sigma[i], sampler.sigma[j] = sampler.sigma[j], sampler.sigma[i]
            after = sampler.edge_term()
            sampler.sigma[i], sampler.sigma[j] = sampler.sigma[j], sampler.sigma[i]
            assert delta == pytest.approx(after - before, rel=1e-9, abs=1e-9)

    def test_sigma_stays_a_permutation(self, small_skg):
        sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
        sampler.run(500, np.random.default_rng(1))
        assert sorted(sampler.sigma.tolist()) == list(range(small_skg.n_nodes))

    def test_acceptance_counting(self, small_skg):
        sampler = PermutationSampler(small_skg, 5, Initiator(0.7, 0.4, 0.2))
        sampler.run(300, np.random.default_rng(2))
        assert 0 <= sampler.accepted <= sampler.proposed <= 300

    def test_wrong_graph_size_rejected(self):
        with pytest.raises(ValidationError):
            PermutationSampler(Graph(3, [(0, 1)]), 2, Initiator(0.5, 0.5, 0.5))


class TestInitialSigma:
    def test_is_permutation(self, small_skg):
        sigma = degree_matched_initial_sigma(small_skg, 5)
        assert sorted(sigma.tolist()) == list(range(32))

    def test_highest_degree_gets_fewest_one_bits(self, small_skg):
        sigma = degree_matched_initial_sigma(small_skg, 5)
        top_node = int(np.argmax(small_skg.degrees))
        assert sigma[top_node] == 0  # id 0 has popcount 0: highest expected degree
