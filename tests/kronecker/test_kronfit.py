"""Tests for the KronFit estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.graphs import Graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronfit import KronFitEstimator
from repro.kronecker.sampling import sample_skg


class TestKronFit:
    @pytest.fixture(scope="class")
    def fitted(self):
        graph = sample_skg(Initiator(0.95, 0.45, 0.2), 9, seed=5)
        estimator = KronFitEstimator(
            n_iterations=25,
            warmup_swaps=800,
            n_permutation_samples=3,
            sample_spacing=120,
            seed=0,
        )
        return estimator.fit(graph)

    def test_parameter_recovery(self, fitted):
        truth = Initiator(0.95, 0.45, 0.2)
        assert fitted.initiator.distance(truth) < 0.25

    def test_result_is_canonical(self, fitted):
        assert fitted.initiator.a >= fitted.initiator.c

    def test_k_matches_graph(self, fitted):
        assert fitted.k == 9

    def test_log_likelihoods_finite(self, fitted):
        assert all(np.isfinite(v) for v in fitted.log_likelihoods)

    def test_likelihood_improves_overall(self, fitted):
        values = fitted.log_likelihoods
        assert max(values[-5:]) >= values[0]

    def test_acceptance_rate_in_range(self, fitted):
        assert 0.0 < fitted.acceptance_rate < 1.0

    def test_trajectory_length(self, fitted):
        assert len(fitted.trajectory) == 25


class TestKronFitEdgeCases:
    def test_empty_graph_rejected(self):
        with pytest.raises(EstimationError):
            KronFitEstimator(n_iterations=1).fit(Graph(4))

    def test_pads_non_power_of_two(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        result = KronFitEstimator(
            n_iterations=2, warmup_swaps=10, n_permutation_samples=1,
            sample_spacing=5, seed=0
        ).fit(graph)
        assert result.k == 3

    def test_deterministic_given_seed(self):
        graph = sample_skg(Initiator(0.9, 0.5, 0.2), 6, seed=1)
        config = dict(
            n_iterations=4, warmup_swaps=50, n_permutation_samples=2,
            sample_spacing=20,
        )
        first = KronFitEstimator(seed=3, **config).fit(graph)
        second = KronFitEstimator(seed=3, **config).fit(graph)
        assert first.initiator == second.initiator

    def test_parameters_stay_in_bounds(self):
        graph = sample_skg(Initiator(0.9, 0.5, 0.2), 6, seed=2)
        result = KronFitEstimator(
            n_iterations=6, warmup_swaps=50, n_permutation_samples=1,
            sample_spacing=20, learning_rate=1.0, seed=0
        ).fit(graph)
        for a, b, c in result.trajectory:
            assert 0.0 < a < 1.0
            assert 0.0 < b < 1.0
            assert 0.0 < c < 1.0

    def test_unavailable_backend_fails_loudly(self, monkeypatch):
        from repro.native.chain import CHAIN_KERNEL

        from repro.errors import ValidationError

        monkeypatch.setitem(
            CHAIN_KERNEL.states, "numba", (None, "numba is not installed")
        )
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValidationError, match="numba is not installed"):
            KronFitEstimator(n_iterations=1, backend="numba").fit(graph)


class TestAcceptanceRateOnTinyGraphs:
    """KronFitResult.acceptance_rate bounds where proposal counting is
    most fragile: with 2 nodes every draw collides at probability 1/2 and
    must be resampled into the single distinct pair."""

    @pytest.mark.parametrize(
        "graph, expected_k",
        [
            (Graph(2, [(0, 1)]), 1),
            (Graph(4, [(0, 1), (1, 2)]), 2),
            (Graph(3, [(0, 1)]), 2),  # padded: isolated padding node
        ],
    )
    def test_rate_is_a_valid_fraction(self, graph, expected_k):
        result = KronFitEstimator(
            n_iterations=3, warmup_swaps=20, n_permutation_samples=2,
            sample_spacing=10, seed=0,
        ).fit(graph)
        assert result.k == expected_k
        assert 0.0 <= result.acceptance_rate <= 1.0

    def test_two_node_graph_always_accepts(self):
        # n=2: the only proposal swaps the two ids, and swapping back and
        # forth leaves the single-edge profile unchanged (delta = 0), so
        # every proposal is accepted.
        result = KronFitEstimator(
            n_iterations=2, warmup_swaps=10, n_permutation_samples=1,
            sample_spacing=5, seed=1,
        ).fit(Graph(2, [(0, 1)]))
        assert result.acceptance_rate == 1.0
