"""Tests for the KronFit estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.graphs import Graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronfit import KronFitEstimator
from repro.kronecker.sampling import sample_skg


class TestKronFit:
    @pytest.fixture(scope="class")
    def fitted(self):
        graph = sample_skg(Initiator(0.95, 0.45, 0.2), 9, seed=5)
        estimator = KronFitEstimator(
            n_iterations=25,
            warmup_swaps=800,
            n_permutation_samples=3,
            sample_spacing=120,
            seed=0,
        )
        return estimator.fit(graph)

    def test_parameter_recovery(self, fitted):
        truth = Initiator(0.95, 0.45, 0.2)
        assert fitted.initiator.distance(truth) < 0.25

    def test_result_is_canonical(self, fitted):
        assert fitted.initiator.a >= fitted.initiator.c

    def test_k_matches_graph(self, fitted):
        assert fitted.k == 9

    def test_log_likelihoods_finite(self, fitted):
        assert all(np.isfinite(v) for v in fitted.log_likelihoods)

    def test_likelihood_improves_overall(self, fitted):
        values = fitted.log_likelihoods
        assert max(values[-5:]) >= values[0]

    def test_acceptance_rate_in_range(self, fitted):
        assert 0.0 < fitted.acceptance_rate < 1.0

    def test_trajectory_length(self, fitted):
        assert len(fitted.trajectory) == 25


class TestKronFitEdgeCases:
    def test_empty_graph_rejected(self):
        with pytest.raises(EstimationError):
            KronFitEstimator(n_iterations=1).fit(Graph(4))

    def test_pads_non_power_of_two(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        result = KronFitEstimator(
            n_iterations=2, warmup_swaps=10, n_permutation_samples=1,
            sample_spacing=5, seed=0
        ).fit(graph)
        assert result.k == 3

    def test_deterministic_given_seed(self):
        graph = sample_skg(Initiator(0.9, 0.5, 0.2), 6, seed=1)
        config = dict(
            n_iterations=4, warmup_swaps=50, n_permutation_samples=2,
            sample_spacing=20,
        )
        first = KronFitEstimator(seed=3, **config).fit(graph)
        second = KronFitEstimator(seed=3, **config).fit(graph)
        assert first.initiator == second.initiator

    def test_parameters_stay_in_bounds(self):
        graph = sample_skg(Initiator(0.9, 0.5, 0.2), 6, seed=2)
        result = KronFitEstimator(
            n_iterations=6, warmup_swaps=50, n_permutation_samples=1,
            sample_spacing=20, learning_rate=1.0, seed=0
        ).fit(graph)
        for a, b, c in result.trajectory:
            assert 0.0 < a < 1.0
            assert 0.0 < b < 1.0
            assert 0.0 < c < 1.0

    def test_unavailable_backend_fails_loudly(self, monkeypatch):
        from repro.native.chain import CHAIN_KERNEL

        from repro.errors import ValidationError

        monkeypatch.setitem(
            CHAIN_KERNEL.states, "numba", (None, "numba is not installed")
        )
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValidationError, match="numba is not installed"):
            KronFitEstimator(n_iterations=1, backend="numba").fit(graph)


class TestAcceptanceRateOnTinyGraphs:
    """KronFitResult.acceptance_rate bounds where proposal counting is
    most fragile: with 2 nodes every draw collides at probability 1/2 and
    must be resampled into the single distinct pair."""

    @pytest.mark.parametrize(
        "graph, expected_k",
        [
            (Graph(2, [(0, 1)]), 1),
            (Graph(4, [(0, 1), (1, 2)]), 2),
            (Graph(3, [(0, 1)]), 2),  # padded: isolated padding node
        ],
    )
    def test_rate_is_a_valid_fraction(self, graph, expected_k):
        result = KronFitEstimator(
            n_iterations=3, warmup_swaps=20, n_permutation_samples=2,
            sample_spacing=10, seed=0,
        ).fit(graph)
        assert result.k == expected_k
        assert 0.0 <= result.acceptance_rate <= 1.0

    def test_two_node_graph_always_accepts(self):
        # n=2: the only proposal swaps the two ids, and swapping back and
        # forth leaves the single-edge profile unchanged (delta = 0), so
        # every proposal is accepted.
        result = KronFitEstimator(
            n_iterations=2, warmup_swaps=10, n_permutation_samples=1,
            sample_spacing=5, seed=1,
        ).fit(Graph(2, [(0, 1)]))
        assert result.acceptance_rate == 1.0


class TestMultiStart:
    """Multi-start KronFit: determinism, selection, and metadata.

    The satellite contract of PR 5: the winner (and its whole
    trajectory) is bit-identical across n_jobs in {1, 4} and both
    REPRO_POOL modes, n_starts=1 is the historical single-chain path,
    and log-likelihood ties resolve to the lowest start index.
    """

    CONFIG = dict(
        n_iterations=3, warmup_swaps=50, n_permutation_samples=2,
        sample_spacing=20, seed=11,
    )

    @pytest.fixture(scope="class")
    def graph(self):
        return sample_skg(Initiator(0.9, 0.5, 0.2), 6, seed=4)

    def test_n_starts_1_is_the_single_chain_fit(self, graph):
        default = KronFitEstimator(**self.CONFIG).fit(graph)
        explicit = KronFitEstimator(**self.CONFIG, n_starts=1).fit(graph)
        assert default == explicit
        assert explicit.n_starts == 1
        assert explicit.start == 0
        assert explicit.start_log_likelihoods == ()

    @pytest.mark.parametrize("pool_mode", ["persistent", "ephemeral"])
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_winner_bit_identical_across_n_jobs_and_pool(
        self, graph, n_jobs, pool_mode, monkeypatch
    ):
        monkeypatch.setenv("REPRO_POOL", pool_mode)
        reference = KronFitEstimator(**self.CONFIG, n_starts=3).fit(graph)
        result = KronFitEstimator(
            **self.CONFIG, n_starts=3, n_jobs=n_jobs
        ).fit(graph)
        assert result == reference
        assert result.trajectory == reference.trajectory
        assert result.log_likelihoods == reference.log_likelihoods

    def test_winner_has_best_final_log_likelihood(self, graph):
        result = KronFitEstimator(**self.CONFIG, n_starts=3).fit(graph)
        assert result.n_starts == 3
        assert len(result.start_log_likelihoods) == 3
        assert result.log_likelihoods[-1] == max(result.start_log_likelihoods)
        assert (
            result.start_log_likelihoods[result.start]
            == result.log_likelihoods[-1]
        )

    def test_starts_explore_different_modes(self, graph):
        result = KronFitEstimator(**self.CONFIG, n_starts=3).fit(graph)
        assert len(set(result.start_log_likelihoods)) > 1

    def test_n_starts_validated(self):
        with pytest.raises(Exception):
            KronFitEstimator(n_starts=0)


class TestStartSelection:
    """The deterministic tie-break of the best-start rule."""

    def make_result(self, final_ll: float) -> "KronFitResult":
        from repro.kronecker.kronfit import KronFitResult

        return KronFitResult(
            initiator=Initiator(0.9, 0.5, 0.2),
            k=4,
            log_likelihoods=(final_ll - 1.0, final_ll),
            acceptance_rate=0.5,
            trajectory=((0.9, 0.5, 0.2),),
        )

    def test_best_wins(self):
        from repro.kronecker.kronfit import select_best_start

        results = [self.make_result(v) for v in (-10.0, -5.0, -7.0)]
        assert select_best_start(results) == 1

    def test_exact_tie_resolves_to_lowest_start(self):
        from repro.kronecker.kronfit import select_best_start

        results = [self.make_result(v) for v in (-5.0, -5.0, -5.0)]
        assert select_best_start(results) == 0

    def test_tie_with_later_better(self):
        from repro.kronecker.kronfit import select_best_start

        results = [self.make_result(v) for v in (-8.0, -5.0, -5.0)]
        assert select_best_start(results) == 1

    def test_empty_rejected(self):
        from repro.kronecker.kronfit import select_best_start

        with pytest.raises(EstimationError):
            select_best_start([])


class TestPerturbedInitialSigma:
    """The deterministic per-start correspondence perturbations."""

    @pytest.fixture(scope="class")
    def graph(self):
        from repro.graphs.operations import pad_to_power_of_two

        raw = sample_skg(Initiator(0.9, 0.5, 0.2), 5, seed=9)
        padded, _k = pad_to_power_of_two(raw)
        return padded

    def test_start_zero_is_degree_matched(self, graph):
        from repro.kronecker.kronfit import perturbed_initial_sigma
        from repro.kronecker.likelihood import degree_matched_initial_sigma

        assert np.array_equal(
            perturbed_initial_sigma(graph, 5, 0),
            degree_matched_initial_sigma(graph, 5),
        )

    def test_perturbations_are_permutations(self, graph):
        from repro.kronecker.kronfit import perturbed_initial_sigma

        for start in range(4):
            sigma = perturbed_initial_sigma(graph, 5, start)
            assert np.array_equal(np.sort(sigma), np.arange(graph.n_nodes))

    def test_deterministic_per_start(self, graph):
        from repro.kronecker.kronfit import perturbed_initial_sigma

        for start in range(3):
            a = perturbed_initial_sigma(graph, 5, start)
            b = perturbed_initial_sigma(graph, 5, start)
            assert np.array_equal(a, b)

    def test_starts_differ(self, graph):
        from repro.kronecker.kronfit import perturbed_initial_sigma

        sigmas = [perturbed_initial_sigma(graph, 5, s) for s in range(3)]
        assert not np.array_equal(sigmas[0], sigmas[1])
        assert not np.array_equal(sigmas[1], sigmas[2])
