"""Regression lock for the chain kernels' touched-cell delta scan.

PR 8 rewrote the Metropolis proposal evaluation in every chain engine:
instead of two full (k+1)² score-table scans per swap, the kernels record
the profile cells the swap actually touches (at most 2·(deg i + deg j)
events) and fold the acceptance delta over that set.  The optimization
must be *invisible* — the float additions happen in the same ascending
cell order as the old full scan, so trajectories are bit-identical to the
pre-delta-scan kernels.

This module locks both halves of that claim:

* **Golden trajectories** — σ checkpoints, profile histograms, and
  acceptance counts captured from the PR 4 full-scan kernels, pinned as
  sha256 digests for every (family, θ) cell and asserted across every
  backend × batch size.  The families are built by sampler-independent
  constructors (``sample_skg_naive`` and deterministic generators), so
  these goldens stay valid under future ``sample_skg`` changes.
* **The pass count** — :attr:`PermutationSampler.score_touches` counts
  score-table reads during delta scans; the tests pin that it is engine-
  and batch-invariant and *far* below the old full-scan cost of
  2·(k+1)² reads per proposal.
"""

from __future__ import annotations

import functools
import hashlib

import numpy as np
import pytest

from repro.graphs import Graph
from repro.graphs.generators import complete_graph, erdos_renyi_graph, star_graph
from repro.graphs.operations import pad_to_power_of_two
from repro.kronecker.initiator import Initiator
from repro.kronecker.likelihood import PermutationSampler
from repro.kronecker.sampling import sample_skg_naive
from repro.native import chain as native_chain
from repro.native.registry import NATIVE_BACKENDS


def _backend_params() -> list:
    params = [pytest.param("numpy")]
    for name in NATIVE_BACKENDS:
        if native_chain.chain_backend_available(name):
            params.append(pytest.param(name))
        else:
            reason = (
                f"{name} backend unavailable: "
                f"{native_chain.chain_backend_error(name)}"
            )
            params.append(pytest.param(name, marks=pytest.mark.skip(reason=reason)))
    return params


BACKENDS = _backend_params()
BATCH_SIZES = (None, 1, 17)

# Built without sample_skg on purpose: the goldens below must never move
# when the grass-hopping sampler's realizations change.
FAMILIES = {
    "skg-naive-k5": lambda: (sample_skg_naive(Initiator(0.9, 0.5, 0.2), 5, seed=3), 5),
    "skg-naive-k7": lambda: (
        sample_skg_naive(Initiator(0.99, 0.45, 0.25), 7, seed=7),
        7,
    ),
    "er-padded-k6": lambda: (
        pad_to_power_of_two(erdos_renyi_graph(50, 0.1, seed=11))[0],
        6,
    ),
    "star-16": lambda: (star_graph(16), 4),
    "clique-8": lambda: (complete_graph(8), 3),
    "near-empty-k3": lambda: (Graph(8, [(0, 1)]), 3),
}

THETAS = {
    "skewed": Initiator(0.9, 0.5, 0.2),
    "paper": Initiator(0.99, 0.45, 0.25),
    "flat": Initiator(0.6, 0.6, 0.6),
}

RUN_LENGTHS = (120, 80)
SEED = 20120330

# Captured from the PR 4 kernels (full-scan proposal evaluation) before
# the delta scan landed: ((sigma digest at checkpoint 1, at checkpoint
# 2), histogram digest, accepted count) per (family, theta) cell, with
# digest = sha256(array.tobytes()).hexdigest()[:16].
GOLDENS = {
    ("skg-naive-k5", "skewed"): (
        ("5e5b88316625d28b", "6f5a071fc101c8c0"),
        "5efbe93e32d1be8b",
        93,
    ),
    ("skg-naive-k5", "paper"): (
        ("051bdf8bd37e69e7", "1b96d92036f861c5"),
        "199910cb417171bf",
        101,
    ),
    ("skg-naive-k5", "flat"): (
        ("95be28c31718b9c7", "ec138b3c7719e552"),
        "ca863238f48c0f3a",
        200,
    ),
    ("skg-naive-k7", "skewed"): (
        ("5cd0e5f44d7a8f46", "ddbff4c7be1697ef"),
        "1b64ea6ecde89708",
        97,
    ),
    ("skg-naive-k7", "paper"): (
        ("710d5e80dd0dcc86", "5cbe597e096f3c98"),
        "9d76057e1faa371f",
        92,
    ),
    ("skg-naive-k7", "flat"): (
        ("16aa3b83eafe4bb9", "e880a5abc7644af9"),
        "8d746745b2bb5bea",
        200,
    ),
    ("er-padded-k6", "skewed"): (
        ("e230eb090b6c22b4", "9aaca815778d889b"),
        "e825b9528e91b7f0",
        77,
    ),
    ("er-padded-k6", "paper"): (
        ("2def915311167202", "29199d2f857a5123"),
        "cc6a3c5de20aa35c",
        64,
    ),
    ("er-padded-k6", "flat"): (
        ("c2375fb16149d067", "d081b31bb6ae5c6b"),
        "a7b203a102d72bba",
        200,
    ),
    ("star-16", "skewed"): (
        ("bc02eb5adf535b76", "5303ff394201e4b1"),
        "d2a409fa4a367e91",
        173,
    ),
    ("star-16", "paper"): (
        ("bc02eb5adf535b76", "5303ff394201e4b1"),
        "d2a409fa4a367e91",
        173,
    ),
    ("star-16", "flat"): (
        ("a93016e00f1380d6", "19f346398ffdc030"),
        "d2a409fa4a367e91",
        200,
    ),
    ("clique-8", "skewed"): (
        ("b708902c9c70d986", "17600eaf44bdd84b"),
        "513db42216b9d6b3",
        200,
    ),
    ("clique-8", "paper"): (
        ("b708902c9c70d986", "17600eaf44bdd84b"),
        "513db42216b9d6b3",
        200,
    ),
    ("clique-8", "flat"): (
        ("b708902c9c70d986", "17600eaf44bdd84b"),
        "513db42216b9d6b3",
        200,
    ),
    ("near-empty-k3", "skewed"): (
        ("3ea22690df51f8f9", "e7520ed371388d7f"),
        "d5e969ec6e56f304",
        160,
    ),
    ("near-empty-k3", "paper"): (
        ("f0d434af8316761f", "3eefe15cf7932332"),
        "e0058bbb4e08b5dc",
        160,
    ),
    ("near-empty-k3", "flat"): (
        ("b708902c9c70d986", "17600eaf44bdd84b"),
        "12403aa05efa8367",
        200,
    ),
}


def digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()[:16]


@functools.lru_cache(maxsize=None)
def family_graph(name: str) -> tuple[Graph, int]:
    return FAMILIES[name]()


def run_chain(family: str, theta_name: str, backend: str, batch_size):
    graph, k = family_graph(family)
    sampler = PermutationSampler(graph, k, THETAS[theta_name], backend=backend)
    rng = np.random.default_rng(SEED)
    trace = []
    for n_steps in RUN_LENGTHS:
        sampler.run(n_steps, rng, batch_size=batch_size)
        trace.append(sampler.sigma.copy())
    return sampler, trace


class TestGoldenTrajectories:
    """Every engine reproduces the PR 4 full-scan kernels bit for bit."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("theta_name", sorted(THETAS))
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_cell_matches_golden(self, family, theta_name, backend, batch_size):
        sigma_digests, hist_digest, accepted = GOLDENS[(family, theta_name)]
        sampler, trace = run_chain(family, theta_name, backend, batch_size)
        for checkpoint, (sigma, want) in enumerate(zip(trace, sigma_digests)):
            assert digest(sigma) == want, (
                f"sigma diverges from the pre-delta-scan kernels at "
                f"checkpoint {checkpoint}"
            )
        assert digest(sampler.histogram()) == hist_digest
        assert sampler.accepted == accepted
        assert sampler.proposed == sum(RUN_LENGTHS)

    def test_goldens_cover_the_family_matrix(self):
        assert set(GOLDENS) == {
            (family, theta) for family in FAMILIES for theta in THETAS
        }


class TestScoreTouches:
    """The delta scan's work counter: small, and engine/batch invariant."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_touches_invariant_across_engines(self, backend, batch_size):
        reference, _ = run_chain("skg-naive-k7", "paper", "numpy", None)
        sampler, _ = run_chain("skg-naive-k7", "paper", backend, batch_size)
        assert sampler.score_touches == reference.score_touches > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_touches_beat_the_full_scan(self, backend):
        """The point of the rewrite: the old kernels read 2·(k+1)² score
        cells per proposal; the delta scan must do far less on sparse
        graphs (the measured ratio on this family is ~19×)."""
        sampler, _ = run_chain("skg-naive-k7", "paper", backend, None)
        k = 7
        full_scan_reads = 2 * sampler.proposed * (k + 1) ** 2
        assert 0 < sampler.score_touches < full_scan_reads // 8

    def test_touches_accumulate_across_runs(self):
        graph, k = family_graph("skg-naive-k5")
        sampler = PermutationSampler(graph, k, THETAS["paper"], backend="numpy")
        rng = np.random.default_rng(1)
        sampler.run(40, rng)
        first = sampler.score_touches
        sampler.run(40, rng)
        assert sampler.score_touches > first > 0
