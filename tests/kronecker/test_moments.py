"""Tests for the Gleich–Owen closed-form moments (paper Eq. 1).

The decisive test family here validates every closed form against
:func:`brute_force_expected_counts` on dense Kronecker powers — this is
how the OCR-corrupted tripin coefficients in the paper's Eq. (1) were
detected and repaired (see the docstring of ``expected_tripins``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kronecker.initiator import Initiator
from repro.kronecker.kronpower import (
    brute_force_expected_counts,
    edge_probability_matrix,
)
from repro.kronecker.moments import (
    expected_edges,
    expected_feature_vector,
    expected_hairpins,
    expected_statistics,
    expected_triangles,
    expected_tripins,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestClosedFormsAgainstBruteForce:
    @given(a=unit, b=unit, c=unit, k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_all_four_features(self, a, b, c, k):
        probabilities = edge_probability_matrix((a, b, c), k)
        oracle = brute_force_expected_counts(probabilities)
        assert float(expected_edges(a, b, c, k)) == pytest.approx(
            oracle.edges, rel=1e-9, abs=1e-9
        )
        assert float(expected_hairpins(a, b, c, k)) == pytest.approx(
            oracle.hairpins, rel=1e-9, abs=1e-9
        )
        assert float(expected_tripins(a, b, c, k)) == pytest.approx(
            oracle.tripins, rel=1e-9, abs=1e-9
        )
        assert float(expected_triangles(a, b, c, k)) == pytest.approx(
            oracle.triangles, rel=1e-9, abs=1e-9
        )


class TestHandChecks:
    def test_k1_edges(self):
        # One potential off-diagonal pair with probability b.
        assert float(expected_edges(0.9, 0.45, 0.2, 1)) == pytest.approx(0.45)

    def test_k1_higher_moments_vanish(self):
        # Two nodes: no wedges, tripins, or triangles are possible.
        for function in (expected_hairpins, expected_tripins, expected_triangles):
            assert float(function(0.9, 0.45, 0.2, 1)) == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_initiator_complete_graph(self):
        # a = b = c = 1 makes P all-ones: counts of K_{2^k}.
        k, n = 3, 8
        assert float(expected_edges(1, 1, 1, k)) == n * (n - 1) / 2
        assert float(expected_hairpins(1, 1, 1, k)) == n * (n - 1) * (n - 2) / 2
        assert float(expected_triangles(1, 1, 1, k)) == (
            n * (n - 1) * (n - 2) / 6
        )
        assert float(expected_tripins(1, 1, 1, k)) == (
            n * (n - 1) * (n - 2) * (n - 3) / 6
        )

    def test_zero_initiator(self):
        for function in (expected_edges, expected_hairpins, expected_tripins,
                         expected_triangles):
            assert float(function(0, 0, 0, 5)) == 0.0


class TestVectorisation:
    def test_broadcasting_matches_scalar(self):
        a = np.array([0.2, 0.9])
        result = expected_edges(a, 0.5, 0.1, 6)
        assert result.shape == (2,)
        assert result[1] == pytest.approx(float(expected_edges(0.9, 0.5, 0.1, 6)))

    def test_feature_vector_order_and_shape(self):
        grid = np.linspace(0, 1, 5)
        stack = expected_feature_vector(
            grid, grid, grid, 4, ("edges", "triangles")
        )
        assert stack.shape == (2, 5)
        assert stack[0, -1] == pytest.approx(float(expected_edges(1, 1, 1, 4)))

    def test_feature_vector_unknown_name(self):
        with pytest.raises(ValueError, match="unknown feature"):
            expected_feature_vector(0.5, 0.5, 0.5, 3, ("edges", "squares"))


class TestMonotonicity:
    @given(
        a=st.floats(min_value=0.1, max_value=0.9),
        b=st.floats(min_value=0.1, max_value=0.9),
        c=st.floats(min_value=0.1, max_value=0.9),
        k=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_increasing_in_each_parameter(self, a, b, c, k):
        base = float(expected_edges(a, b, c, k))
        assert float(expected_edges(min(a + 0.05, 1), b, c, k)) >= base
        assert float(expected_edges(a, min(b + 0.05, 1), c, k)) >= base
        assert float(expected_edges(a, b, min(c + 0.05, 1), k)) >= base


class TestExpectedStatistics:
    def test_named_tuple_fields(self):
        stats = expected_statistics(Initiator(0.9, 0.5, 0.2), 5)
        assert stats.edges > 0
        assert stats.hairpins > 0
        assert stats.tripins > 0
        assert stats.triangles > 0

    def test_monte_carlo_consistency(self):
        # Empirical means over many exact samples must approach Eq. (1).
        from repro.core.synthesis import ensemble_matching_statistics, sample_ensemble

        theta = Initiator(0.9, 0.5, 0.2)
        k = 6
        stats = expected_statistics(theta, k)
        ensemble = sample_ensemble(theta, k, 400, seed=0)
        means = ensemble_matching_statistics(ensemble)
        assert means.edges == pytest.approx(stats.edges, rel=0.05)
        assert means.hairpins == pytest.approx(stats.hairpins, rel=0.10)
        assert means.tripins == pytest.approx(stats.tripins, rel=0.15)
        assert means.triangles == pytest.approx(stats.triangles, rel=0.30)
