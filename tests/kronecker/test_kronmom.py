"""Tests for the KronMom moment-matching estimator."""

from __future__ import annotations

import pytest

from repro.errors import EstimationError, ValidationError
from repro.graphs import Graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronmom import (
    DISTANCES,
    NORMALIZATIONS,
    KronMomEstimator,
    MomentMatchResult,
)
from repro.kronecker.moments import expected_statistics
from repro.kronecker.sampling import sample_skg
from repro.stats.counts import MatchingStatistics


class TestNoiselessRecovery:
    """Feeding exact expected statistics must recover the generator almost
    exactly — the strongest possible correctness check for the solver."""

    @pytest.mark.parametrize(
        "theta",
        [
            Initiator(0.99, 0.45, 0.25),
            Initiator(0.9, 0.6, 0.1),
            Initiator(0.8, 0.5, 0.4),
        ],
    )
    def test_recovers_generator(self, theta):
        k = 12
        stats = expected_statistics(theta, k)
        result = KronMomEstimator().fit_statistics(stats, k)
        assert result.initiator.distance(theta) < 0.02

    def test_core_periphery_recovery(self):
        # c = 0 corner (the AS20 shape in the paper's Table 1).
        theta = Initiator(1.0, 0.6, 0.0)
        stats = expected_statistics(theta, 12)
        result = KronMomEstimator().fit_statistics(stats, 12)
        assert result.initiator.distance(theta) < 0.03


class TestFitOnSampledGraphs:
    def test_sampled_graph_recovery(self):
        theta = Initiator(0.99, 0.45, 0.25)
        graph = sample_skg(theta, 12, seed=0)
        result = KronMomEstimator().fit(graph)
        assert result.initiator.distance(theta) < 0.12

    def test_k_inferred_from_padding(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)])
        result = KronMomEstimator(grid_points=11).fit(graph)
        assert result.k == 3

    def test_too_small_graph_rejected(self):
        with pytest.raises(EstimationError):
            KronMomEstimator().fit(Graph(1))


class TestObjectiveOptions:
    @pytest.mark.parametrize("distance", sorted(DISTANCES))
    @pytest.mark.parametrize("normalization", sorted(NORMALIZATIONS))
    def test_all_combinations_run(self, distance, normalization):
        theta = Initiator(0.9, 0.5, 0.2)
        stats = expected_statistics(theta, 8)
        estimator = KronMomEstimator(
            distance=distance, normalization=normalization, grid_points=11,
            n_refinements=2,
        )
        result = estimator.fit_statistics(stats, 8)
        assert isinstance(result, MomentMatchResult)
        assert result.initiator.distance(theta) < 0.25

    def test_feature_subsets(self):
        theta = Initiator(0.9, 0.5, 0.2)
        stats = expected_statistics(theta, 10)
        estimator = KronMomEstimator(features=("edges", "hairpins", "triangles"))
        result = estimator.fit_statistics(stats, 10)
        assert result.features == ("edges", "hairpins", "triangles")
        assert result.initiator.distance(theta) < 0.1

    def test_unknown_distance_rejected(self):
        with pytest.raises(ValidationError):
            KronMomEstimator(distance="manhattan")

    def test_unknown_normalization_rejected(self):
        with pytest.raises(ValidationError):
            KronMomEstimator(normalization="max")

    def test_empty_features_rejected(self):
        with pytest.raises(ValidationError):
            KronMomEstimator(features=())


class TestRobustness:
    def test_negative_statistics_floored(self):
        # DP noise can push counts negative; the solver must stay sane.
        stats = MatchingStatistics(
            edges=500.0, hairpins=2000.0, tripins=4000.0, triangles=-50.0
        )
        result = KronMomEstimator().fit_statistics(stats, 10)
        assert result.observed.triangles == 1.0
        theta = result.initiator
        assert 0.0 <= theta.c <= theta.a <= 1.0

    def test_result_canonical(self):
        stats = expected_statistics(Initiator(0.2, 0.5, 0.9), 8)
        result = KronMomEstimator().fit_statistics(stats, 8)
        assert result.initiator.a >= result.initiator.c

    def test_objective_nonnegative(self):
        stats = expected_statistics(Initiator(0.9, 0.5, 0.2), 8)
        result = KronMomEstimator().fit_statistics(stats, 8)
        assert result.objective >= 0.0

    def test_noiseless_objective_near_zero(self):
        stats = expected_statistics(Initiator(0.9, 0.5, 0.2), 8)
        result = KronMomEstimator().fit_statistics(stats, 8)
        assert result.objective < 1e-6

    def test_deterministic(self):
        stats = expected_statistics(Initiator(0.9, 0.5, 0.2), 9)
        first = KronMomEstimator().fit_statistics(stats, 9)
        second = KronMomEstimator().fit_statistics(stats, 9)
        assert first.initiator == second.initiator
