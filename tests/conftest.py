"""Shared fixtures: small canonical graphs and reproducible RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def triangle() -> Graph:
    """K3: the smallest graph with a triangle."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def square_with_diagonal() -> Graph:
    """4-cycle plus one chord: two triangles sharing an edge."""
    return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])


@pytest.fixture
def star5() -> Graph:
    """Star on 5 nodes (pure hairpins, no triangles)."""
    return star_graph(5)


@pytest.fixture
def path4() -> Graph:
    """Path on 4 nodes."""
    return path_graph(4)


@pytest.fixture
def k5() -> Graph:
    """Complete graph on 5 nodes."""
    return complete_graph(5)


@pytest.fixture
def c6() -> Graph:
    """Cycle on 6 nodes."""
    return cycle_graph(6)


@pytest.fixture
def er_graph() -> Graph:
    """A fixed medium Erdős–Rényi graph for statistical tests."""
    return erdos_renyi_graph(200, 0.05, seed=7)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test-local randomness."""
    return np.random.default_rng(12345)
