"""Tests for the uniform estimator front door."""

from __future__ import annotations

import pytest

from repro.core.nonprivate import (
    EstimatorResult,
    fit_kronfit,
    fit_kronmom,
    fit_private,
    kronecker_order,
)
from repro.graphs import Graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg


@pytest.fixture(scope="module")
def graph():
    return sample_skg(Initiator(0.9, 0.5, 0.2), 8, seed=2)


class TestFrontDoor:
    def test_kronmom(self, graph):
        result = fit_kronmom(graph)
        assert isinstance(result, EstimatorResult)
        assert result.method == "KronMom"
        assert result.k == 8

    def test_kronfit(self, graph):
        result = fit_kronfit(
            graph, n_iterations=3, warmup_swaps=50, n_permutation_samples=1,
            sample_spacing=20, seed=0,
        )
        assert result.method == "KronFit"
        assert 0.0 <= result.initiator.c <= result.initiator.a <= 1.0

    def test_private(self, graph):
        result = fit_private(graph, epsilon=1.0, delta=0.01, seed=0)
        assert result.method == "Private"
        assert result.details.epsilon == 1.0

    def test_sample_graph_from_result(self, graph):
        result = fit_kronmom(graph)
        synthetic = result.sample_graph(seed=0)
        assert synthetic.n_nodes == 2**result.k

    def test_kronecker_order_helper(self):
        assert kronecker_order(Graph(5)) == 3
        assert kronecker_order(Graph(8)) == 3

    def test_all_methods_agree_on_k(self, graph):
        mom = fit_kronmom(graph)
        private = fit_private(graph, epsilon=1.0, delta=0.01, seed=0)
        assert mom.k == private.k == 8
