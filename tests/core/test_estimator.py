"""Tests for the private estimator (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.graphs import Graph
from repro.core.estimator import PrivateKroneckerEstimator
from repro.core.nonprivate import fit_kronmom
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg


@pytest.fixture(scope="module")
def skg_graph():
    return sample_skg(Initiator(0.95, 0.5, 0.2), 11, seed=1)


class TestAlgorithm1:
    def test_budget_recorded(self, skg_graph):
        estimate = PrivateKroneckerEstimator(0.2, 0.01, seed=0).fit(skg_graph)
        assert estimate.epsilon == pytest.approx(0.2)
        assert estimate.delta == pytest.approx(0.01)

    def test_k_matches_graph_size(self, skg_graph):
        estimate = PrivateKroneckerEstimator(0.2, 0.01, seed=0).fit(skg_graph)
        assert estimate.k == 11

    def test_high_epsilon_approaches_nonprivate(self, skg_graph):
        # With a huge budget the DP statistics converge to the exact ones,
        # so the private fit must converge to the non-private KronMom fit.
        reference = fit_kronmom(skg_graph).initiator
        estimate = PrivateKroneckerEstimator(10_000.0, 0.001, seed=0).fit(skg_graph)
        assert estimate.initiator.distance(reference) < 0.02

    def test_paper_epsilon_stays_close_to_nonprivate(self, skg_graph):
        reference = fit_kronmom(skg_graph).initiator
        distances = [
            PrivateKroneckerEstimator(0.2, 0.01, seed=s)
            .fit(skg_graph)
            .initiator.distance(reference)
            for s in range(5)
        ]
        assert np.median(distances) < 0.15

    def test_deterministic_given_seed(self, skg_graph):
        a = PrivateKroneckerEstimator(0.2, 0.01, seed=5).fit(skg_graph)
        b = PrivateKroneckerEstimator(0.2, 0.01, seed=5).fit(skg_graph)
        assert a.initiator == b.initiator

    def test_different_seeds_differ(self, skg_graph):
        a = PrivateKroneckerEstimator(0.2, 0.01, seed=1).fit(skg_graph)
        b = PrivateKroneckerEstimator(0.2, 0.01, seed=2).fit(skg_graph)
        assert a.initiator != b.initiator

    def test_canonical_result(self, skg_graph):
        estimate = PrivateKroneckerEstimator(0.2, 0.01, seed=0).fit(skg_graph)
        assert estimate.initiator.a >= estimate.initiator.c

    def test_tiny_graph_rejected(self):
        with pytest.raises(EstimationError):
            PrivateKroneckerEstimator(0.2, 0.01).fit(Graph(1))


class TestTriangleFloorPolicies:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            PrivateKroneckerEstimator(0.2, 0.01, triangle_floor="median")

    @pytest.mark.parametrize("policy", ["noise_scale", "one", "none"])
    def test_policies_run(self, policy, skg_graph):
        estimate = PrivateKroneckerEstimator(
            0.2, 0.01, triangle_floor=policy, seed=0
        ).fit(skg_graph)
        assert 0.0 <= estimate.initiator.c <= estimate.initiator.a <= 1.0

    def test_noise_scale_floor_applied_when_noisy_count_negative(self, skg_graph):
        # Find a seed where the raw triangle release is negative, then
        # check that the matched statistic was lifted to the noise scale.
        for seed in range(60):
            estimator = PrivateKroneckerEstimator(0.2, 0.01, seed=seed)
            estimate = estimator.fit(skg_graph)
            raw = estimate.release.statistics.triangles
            scale = estimate.release.triangle_release.noise_scale
            if raw < scale:
                assert estimate.moment_result.observed.triangles == pytest.approx(
                    max(scale, 1.0)
                )
                break
        else:
            pytest.skip("no negative triangle draw in 60 seeds")

    def test_noise_scale_floor_more_stable_than_floor_one(self, skg_graph):
        reference = fit_kronmom(skg_graph).initiator
        seeds = range(8)
        stable = np.median(
            [
                PrivateKroneckerEstimator(0.2, 0.01, seed=s)
                .fit(skg_graph)
                .initiator.distance(reference)
                for s in seeds
            ]
        )
        naive = np.median(
            [
                PrivateKroneckerEstimator(0.2, 0.01, triangle_floor="one", seed=s)
                .fit(skg_graph)
                .initiator.distance(reference)
                for s in seeds
            ]
        )
        assert stable <= naive + 1e-9


class TestBudgetSplit:
    def test_custom_degree_share_recorded(self, skg_graph):
        estimate = PrivateKroneckerEstimator(
            1.0, 0.01, degree_share=0.8, seed=0
        ).fit(skg_graph)
        entries = estimate.release.accountant.ledger
        assert entries[0].epsilon == pytest.approx(0.8)
        assert entries[1].epsilon == pytest.approx(0.2)
