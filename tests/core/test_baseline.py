"""Tests for the DP degree-sequence synthesizer baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.graphs import Graph
from repro.graphs.generators import barabasi_albert_graph
from repro.core.baseline import DPDegreeSequenceSynthesizer, _round_to_graphical
from repro.stats.comparison import ks_distance


@pytest.fixture(scope="module")
def source_graph():
    return barabasi_albert_graph(400, 4, seed=0)


class TestFit:
    def test_budget_ledger(self, source_graph):
        model = DPDegreeSequenceSynthesizer(epsilon=0.5, seed=0).fit(source_graph)
        assert model.epsilon == pytest.approx(0.5)
        assert model.accountant.spent[1] == 0.0  # pure epsilon-DP

    def test_degrees_are_integer_and_sorted(self, source_graph):
        model = DPDegreeSequenceSynthesizer(epsilon=0.5, seed=0).fit(source_graph)
        assert model.degrees.dtype == np.int64
        assert np.all(np.diff(model.degrees) >= 0)

    def test_degree_sum_even(self, source_graph):
        for seed in range(5):
            model = DPDegreeSequenceSynthesizer(epsilon=0.3, seed=seed).fit(
                source_graph
            )
            assert model.degrees.sum() % 2 == 0

    def test_high_epsilon_recovers_exact_degrees(self, source_graph):
        model = DPDegreeSequenceSynthesizer(epsilon=1000.0, seed=1).fit(source_graph)
        truth = np.sort(source_graph.degrees)
        # Parity fix may nudge one degree by one.
        assert np.abs(model.degrees - truth).sum() <= 1

    def test_too_small_graph_rejected(self):
        with pytest.raises(EstimationError):
            DPDegreeSequenceSynthesizer().fit(Graph(1))

    def test_deterministic(self, source_graph):
        a = DPDegreeSequenceSynthesizer(epsilon=0.5, seed=3).fit(source_graph)
        b = DPDegreeSequenceSynthesizer(epsilon=0.5, seed=3).fit(source_graph)
        np.testing.assert_array_equal(a.degrees, b.degrees)


class TestSampling:
    def test_sample_matches_degree_distribution(self, source_graph):
        model = DPDegreeSequenceSynthesizer(epsilon=5.0, seed=0).fit(source_graph)
        synthetic = model.sample_graph(seed=1)
        distance = ks_distance(
            source_graph.degrees[source_graph.degrees > 0],
            synthetic.degrees[synthetic.degrees > 0],
        )
        assert distance < 0.1

    def test_sample_graphs_reproducible(self, source_graph):
        model = DPDegreeSequenceSynthesizer(epsilon=1.0, seed=0).fit(source_graph)
        first = model.sample_graphs(2, seed=4)
        second = model.sample_graphs(2, seed=4)
        assert all(a == b for a, b in zip(first, second))


class TestRounding:
    def test_clips_and_rounds(self):
        rounded = _round_to_graphical(np.array([-1.2, 0.4, 2.6, 99.0]), 10)
        assert rounded.min() >= 0
        assert rounded.max() <= 9
        assert rounded.sum() % 2 == 0

    def test_parity_fix_nudges_one_degree(self):
        rounded = _round_to_graphical(np.array([1.0, 1.0, 1.0]), 5)
        assert rounded.sum() % 2 == 0
        assert rounded.sum() in (2, 4)
