"""Tests for ensemble synthesis."""

from __future__ import annotations

import pytest

from repro.core.synthesis import ensemble_matching_statistics, sample_ensemble
from repro.kronecker.initiator import Initiator
from repro.kronecker.moments import expected_statistics


class TestSampleEnsemble:
    def test_count(self):
        graphs = sample_ensemble(Initiator(0.9, 0.5, 0.2), 6, 5, seed=0)
        assert len(graphs) == 5

    def test_reproducible(self):
        a = sample_ensemble(Initiator(0.9, 0.5, 0.2), 6, 4, seed=3)
        b = sample_ensemble(Initiator(0.9, 0.5, 0.2), 6, 4, seed=3)
        assert all(x == y for x, y in zip(a, b))

    def test_members_differ(self):
        graphs = sample_ensemble(Initiator(0.9, 0.5, 0.2), 6, 3, seed=1)
        assert graphs[0] != graphs[1]

    def test_zero_count(self):
        assert sample_ensemble(Initiator(0.9, 0.5, 0.2), 6, 0, seed=0) == []


class TestEnsembleStatistics:
    def test_mean_tracks_expectation(self):
        theta = Initiator(0.9, 0.5, 0.2)
        k = 7
        graphs = sample_ensemble(theta, k, 200, seed=0)
        means = ensemble_matching_statistics(graphs)
        expected = expected_statistics(theta, k)
        assert means.edges == pytest.approx(expected.edges, rel=0.05)
        assert means.hairpins == pytest.approx(expected.hairpins, rel=0.15)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            ensemble_matching_statistics([])


class TestEnsembleStatisticsParallelism:
    """The stats evaluation runs through the trial engine (PR 5)."""

    def test_bit_identical_across_n_jobs(self):
        graphs = sample_ensemble(Initiator(0.9, 0.5, 0.2), 6, 6, seed=2)
        serial = ensemble_matching_statistics(graphs, n_jobs=1)
        parallel = ensemble_matching_statistics(graphs, n_jobs=3)
        assert serial == parallel

    def test_honours_repro_n_jobs_env(self, monkeypatch):
        graphs = sample_ensemble(Initiator(0.9, 0.5, 0.2), 6, 4, seed=2)
        reference = ensemble_matching_statistics(graphs)
        monkeypatch.setenv("REPRO_N_JOBS", "2")
        assert ensemble_matching_statistics(graphs) == reference
