"""Tests for the publishable PrivateEstimate object."""

from __future__ import annotations

import pytest

from repro.core.estimator import PrivateKroneckerEstimator
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg


@pytest.fixture(scope="module")
def estimate():
    graph = sample_skg(Initiator(0.9, 0.5, 0.2), 8, seed=0)
    return PrivateKroneckerEstimator(1.0, 0.01, seed=0).fit(graph)


class TestSampling:
    def test_sample_graph_size(self, estimate):
        graph = estimate.sample_graph(seed=0)
        assert graph.n_nodes == 2**estimate.k

    def test_sample_graph_deterministic(self, estimate):
        assert estimate.sample_graph(seed=4) == estimate.sample_graph(seed=4)

    def test_sample_graphs_count_and_reproducibility(self, estimate):
        first = estimate.sample_graphs(3, seed=7)
        second = estimate.sample_graphs(3, seed=7)
        assert len(first) == 3
        assert all(a == b for a, b in zip(first, second))

    def test_sample_graphs_are_independent(self, estimate):
        graphs = estimate.sample_graphs(3, seed=1)
        assert graphs[0] != graphs[1]


class TestIntrospection:
    def test_expected_statistics_positive(self, estimate):
        stats = estimate.expected_statistics()
        assert stats.edges > 0
        assert stats.hairpins > 0

    def test_describe_contains_parameters_and_ledger(self, estimate):
        text = estimate.describe()
        assert "private SKG estimate" in text
        assert "privacy budget" in text
        assert "kronecker order" in text

    def test_frozen(self, estimate):
        with pytest.raises(AttributeError):
            estimate.k = 3  # type: ignore[misc]
