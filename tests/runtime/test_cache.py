"""Tests for the on-disk trial cache."""

from __future__ import annotations

import numpy as np

from repro.runtime import TrialCache


KEY = "ab" * 32
OTHER = "cd" * 32


class TestTrialCache:
    def test_roundtrip(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        cache.store(KEY, {"edges": 12.0, "values": np.arange(3)})
        hit, value = cache.load(KEY)
        assert hit
        assert value["edges"] == 12.0
        np.testing.assert_array_equal(value["values"], np.arange(3))

    def test_miss(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        assert cache.load(OTHER) == (False, None)

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "cache"
        TrialCache(target)
        assert target.is_dir()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        cache.store(KEY, [1, 2, 3])
        cache.path_for(KEY).write_bytes(b"not a pickle")
        assert cache.load(KEY) == (False, None)
        # And the next store repairs it.
        cache.store(KEY, [4, 5])
        assert cache.load(KEY) == (True, [4, 5])

    def test_corrupt_entry_is_quarantined_with_a_warning(self, tmp_path, caplog):
        cache = TrialCache(tmp_path / "cache")
        cache.store(KEY, [1, 2, 3])
        path = cache.path_for(KEY)
        path.write_bytes(b"not a pickle")
        with caplog.at_level("WARNING", logger="repro.runtime.cache"):
            assert cache.load(KEY) == (False, None)
        assert any("quarantined" in record.message for record in caplog.records)
        # The bad bytes moved aside (kept for post-mortems), the slot is
        # free, and the quarantine file never counts as an entry.
        quarantined = path.with_name(path.name + ".corrupt")
        assert not path.exists()
        assert quarantined.read_bytes() == b"not a pickle"
        assert len(cache) == 0
        # Truncated entries quarantine the same way.
        cache.store(KEY, [9])
        path.write_bytes(path.read_bytes()[:3])
        assert cache.load(KEY) == (False, None)
        assert not path.exists()
        # A second corruption of the same slot overwrites the quarantine
        # file rather than failing the rename.
        assert quarantined.exists()

    def test_overwrite_replaces(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        cache.store(KEY, "first")
        cache.store(KEY, "second")
        assert cache.load(KEY) == (True, "second")
        assert len(cache) == 1

    def test_len_counts_entries(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        assert len(cache) == 0
        cache.store(KEY, 1)
        cache.store(OTHER, 2)
        assert len(cache) == 2

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        cache.store(KEY, list(range(100)))
        leftovers = [p for p in (tmp_path / "cache").rglob(".tmp-*")]
        assert leftovers == []


def _hammer_store(directory, key, worker, rounds):
    """Store ``rounds`` payloads under one key (cross-process racer)."""
    cache = TrialCache(directory)
    for round_index in range(rounds):
        cache.store(key, {"worker": worker, "round": round_index})
    return worker


class TestConcurrentWriters:
    """Two processes racing to store the same key must both succeed.

    The atomic mkstemp + os.replace protocol means the loser's payload
    simply overwrites the winner's — complete either way — and no
    half-written file is ever visible, so nothing is quarantined as
    ``.corrupt`` and no ``.tmp-*`` droppings survive.
    """

    def test_same_key_race_leaves_a_complete_entry(self, tmp_path):
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        rounds = 50
        workers = [
            context.Process(
                target=_hammer_store, args=(str(tmp_path), KEY, worker, rounds)
            )
            for worker in range(2)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=120)
            assert process.exitcode == 0

        cache = TrialCache(tmp_path)
        hit, value = cache.load(KEY)
        assert hit
        # Whichever writer won the final rename, the entry is one
        # writer's complete last payload.
        assert value["round"] == rounds - 1
        assert value["worker"] in (0, 1)

        leftovers = [
            path
            for path in tmp_path.rglob("*")
            if path.is_file() and path.suffix != ".pkl"
        ]
        assert leftovers == []
        assert not list(tmp_path.rglob("*.corrupt"))
        assert len(cache) == 1
