"""Tests for the trial-execution engine: determinism, parallelism, caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.runtime import TrialSpec, resolve_n_jobs, run_trials
from repro.stats.counts import matching_statistics


def _draw_trial(rng, *, size):
    """Deterministic function of the trial's RNG stream alone."""
    return rng.standard_normal(size).tolist()


def _skg_trial(rng, *, a, b, c, k):
    graph = sample_skg(Initiator(a, b, c), k, seed=rng)
    return matching_statistics(graph)


def _failing_trial(rng):
    raise RuntimeError("trial exploded")


def _specs(count=6, size=4):
    return [
        TrialSpec(fn=_draw_trial, params={"size": size}, index=trial)
        for trial in range(count)
    ]


class TestDeterminism:
    def test_same_seed_same_results(self):
        first = run_trials(_specs(), seed=11, n_jobs=1)
        second = run_trials(_specs(), seed=11, n_jobs=1)
        assert first.results == second.results

    def test_different_seed_different_results(self):
        first = run_trials(_specs(), seed=11, n_jobs=1)
        second = run_trials(_specs(), seed=12, n_jobs=1)
        assert first.results != second.results

    def test_bit_identical_across_worker_counts(self):
        serial = run_trials(_specs(), seed=11, n_jobs=1)
        parallel = run_trials(_specs(), seed=11, n_jobs=4)
        assert parallel.n_jobs == 4
        assert parallel.results == serial.results

    def test_skg_ensemble_bit_identical_across_worker_counts(self):
        specs = [
            TrialSpec(
                fn=_skg_trial,
                params={"a": 0.99, "b": 0.45, "c": 0.25, "k": 7},
                index=trial,
            )
            for trial in range(8)
        ]
        serial = run_trials(specs, seed=20120330, n_jobs=1)
        parallel = run_trials(specs, seed=20120330, n_jobs=4)
        assert parallel.results == serial.results

    def test_explicit_spec_seed_overrides_root(self):
        spec = TrialSpec(fn=_draw_trial, params={"size": 3}, index=0, seed=123)
        report = run_trials([spec], seed=999, n_jobs=1)
        expected = np.random.default_rng(123).standard_normal(3).tolist()
        assert report.results == [expected]

    def test_generator_root_seed_accepted(self):
        rng = np.random.default_rng(5)
        report = run_trials(_specs(2), seed=rng, n_jobs=1)
        assert len(report.results) == 2

    def test_results_in_spec_order(self):
        specs = [
            TrialSpec(fn=_draw_trial, params={"size": 1}, index=trial, seed=trial)
            for trial in range(5)
        ]
        report = run_trials(specs, n_jobs=4)
        expected = [
            np.random.default_rng(trial).standard_normal(1).tolist()
            for trial in range(5)
        ]
        assert report.results == expected


class TestCaching:
    def test_second_run_executes_zero_trials(self, tmp_path):
        cache = tmp_path / "cache"
        first = run_trials(_specs(), seed=11, n_jobs=1, cache=cache)
        second = run_trials(_specs(), seed=11, n_jobs=1, cache=cache)
        assert (first.executed, first.cached) == (6, 0)
        assert (second.executed, second.cached) == (0, 6)
        assert second.results == first.results

    def test_cache_shared_between_worker_counts(self, tmp_path):
        cache = tmp_path / "cache"
        first = run_trials(_specs(), seed=11, n_jobs=4, cache=cache)
        second = run_trials(_specs(), seed=11, n_jobs=1, cache=cache)
        assert second.executed == 0
        assert second.results == first.results

    def test_config_change_invalidates(self, tmp_path):
        cache = tmp_path / "cache"
        run_trials(_specs(size=4), seed=11, n_jobs=1, cache=cache)
        changed = run_trials(_specs(size=5), seed=11, n_jobs=1, cache=cache)
        assert changed.executed == 6
        assert changed.cached == 0

    def test_seed_change_invalidates(self, tmp_path):
        cache = tmp_path / "cache"
        run_trials(_specs(), seed=11, n_jobs=1, cache=cache)
        reseeded = run_trials(_specs(), seed=12, n_jobs=1, cache=cache)
        assert reseeded.executed == 6

    def test_partial_cache_runs_only_missing(self, tmp_path):
        cache = tmp_path / "cache"
        run_trials(_specs(count=3), seed=11, n_jobs=1, cache=cache)
        extended = run_trials(_specs(count=6), seed=11, n_jobs=1, cache=cache)
        assert extended.cached == 3
        assert extended.executed == 3

    def test_no_cache_reruns_everything(self):
        first = run_trials(_specs(), seed=11, n_jobs=1)
        second = run_trials(_specs(), seed=11, n_jobs=1)
        assert first.executed == second.executed == 6


class TestResolveNJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_JOBS", raising=False)
        assert resolve_n_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "3")
        assert resolve_n_jobs(None) == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "3")
        assert resolve_n_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_n_jobs(0) >= 1

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_N_JOBS"):
            resolve_n_jobs(None)

    def test_non_integer_argument_raises(self):
        with pytest.raises(ValidationError):
            resolve_n_jobs(2.5)


class TestErrors:
    def test_trial_exception_propagates_serial(self):
        with pytest.raises(RuntimeError, match="trial exploded"):
            run_trials([TrialSpec(fn=_failing_trial)], seed=0, n_jobs=1)

    def test_trial_exception_propagates_parallel(self):
        specs = [TrialSpec(fn=_failing_trial, index=trial) for trial in range(3)]
        with pytest.raises(RuntimeError, match="trial exploded"):
            run_trials(specs, seed=0, n_jobs=2)

    def test_empty_spec_list(self):
        report = run_trials([], seed=0, n_jobs=2)
        assert report.results == []
        assert report.executed == report.cached == 0
