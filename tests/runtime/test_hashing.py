"""Tests for stable content hashing (cache keys)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kronecker.initiator import Initiator
from repro.runtime import TrialSpec, code_fingerprint, stable_hash, trial_key


def _trial_a(rng, *, size):
    return float(rng.standard_normal(size).sum())


def _trial_b(rng, *, size):
    return float(rng.standard_normal(size).mean())


class TestStableHash:
    def test_mapping_order_invariant(self):
        assert stable_hash({"a": 1, "b": 2.0}) == stable_hash({"b": 2.0, "a": 1})

    def test_value_sensitive(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_int_float_distinct(self):
        assert stable_hash(1) != stable_hash(1.0)

    def test_bool_int_distinct(self):
        assert stable_hash(True) != stable_hash(1)

    def test_none_and_containers(self):
        assert stable_hash(None) != stable_hash("")
        assert stable_hash([1, 2]) != stable_hash((2, 1))
        assert stable_hash({1, 2}) == stable_hash({2, 1})

    def test_ndarray_by_value(self):
        first = np.arange(6, dtype=np.float64)
        second = np.arange(6, dtype=np.float64)
        assert stable_hash(first) == stable_hash(second)
        assert stable_hash(first) != stable_hash(first.astype(np.int64))
        assert stable_hash(first) != stable_hash(first.reshape(2, 3))

    def test_dataclass_by_fields(self):
        assert stable_hash(Initiator(0.9, 0.5, 0.2)) == stable_hash(
            Initiator(0.9, 0.5, 0.2)
        )
        assert stable_hash(Initiator(0.9, 0.5, 0.2)) != stable_hash(
            Initiator(0.9, 0.5, 0.1)
        )

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="stable_hash does not support"):
            stable_hash(object())

    def test_object_dtype_array_raises(self):
        # Object arrays serialize as memory addresses, not values: a key
        # built from one would differ between processes (cache poison).
        with pytest.raises(TypeError, match="object-dtype"):
            stable_hash(np.array([object()], dtype=object))

    def test_stable_across_calls(self):
        # A literal digest pins process-independence: hash() salting or
        # id()-based fallbacks would break this.
        assert stable_hash("repro") == stable_hash("repro")
        assert len(stable_hash("repro")) == 64


class TestTrialKey:
    def test_varies_with_each_component(self):
        base = TrialSpec(fn=_trial_a, params={"size": 3}, index=0)
        keys = {
            trial_key(base, 7),
            trial_key(TrialSpec(fn=_trial_b, params={"size": 3}, index=0), 7),
            trial_key(TrialSpec(fn=_trial_a, params={"size": 4}, index=0), 7),
            trial_key(TrialSpec(fn=_trial_a, params={"size": 3}, index=1), 7),
            trial_key(base, 8),
        }
        assert len(keys) == 5

    def test_seed_sequence_token(self):
        spec = TrialSpec(fn=_trial_a, params={"size": 3}, index=0)
        children = np.random.SeedSequence(5).spawn(2)
        assert trial_key(spec, children[0]) != trial_key(spec, children[1])
        # The same child derived again yields the same key (resumability).
        again = np.random.SeedSequence(5).spawn(2)
        assert trial_key(spec, children[0]) == trial_key(spec, again[0])

    def test_code_fingerprint_distinguishes_functions(self):
        assert code_fingerprint(_trial_a) != code_fingerprint(_trial_b)
