"""Block-parallel counting passes through the runtime pool.

:func:`repro.stats.kernels.triangle_pass` fans contiguous groups of row
blocks across the :mod:`repro.runtime` process pool when asked
(``n_jobs > 1``).  The contract mirrors the trial engine's: results are
**bit-identical at any worker count**, because the reduction is positional
(per-node slices written back by row range, maxima folded in group order)
and every accumulator is integer-exact.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.runtime
from repro.errors import ValidationError
from repro.graphs.generators import erdos_renyi_graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.stats.kernels import (
    available_kernel_backends,
    reference_count_triangles,
    reference_max_common_neighbors,
    reference_triangles_per_node,
    triangle_pass,
)


def assert_results_identical(first, second):
    assert first.triangles == second.triangles
    assert first.max_common_neighbors == second.max_common_neighbors
    assert first.n_blocks == second.n_blocks
    assert first.wedges == second.wedges
    assert first.tripins == second.tripins
    np.testing.assert_array_equal(
        np.asarray(first.per_node), np.asarray(second.per_node)
    )


class TestParallelTrianglePass:
    def test_bit_identical_at_n_jobs_1_and_4(self):
        graph = sample_skg(Initiator(0.99, 0.45, 0.25), 10, seed=17)
        serial = triangle_pass(graph, block_size=64, n_jobs=1)
        fanned = triangle_pass(graph, block_size=64, n_jobs=4)
        assert serial.n_blocks > 1  # the fan-out actually had blocks to fan
        assert_results_identical(serial, fanned)

    def test_parallel_matches_references_on_every_backend(self):
        graph = erdos_renyi_graph(240, 0.06, seed=23)
        expected = (
            reference_count_triangles(graph),
            reference_max_common_neighbors(graph),
            reference_triangles_per_node(graph),
        )
        for backend in available_kernel_backends():
            result = triangle_pass(graph, block_size=48, backend=backend, n_jobs=4)
            assert result.triangles == expected[0]
            assert result.max_common_neighbors == expected[1]
            np.testing.assert_array_equal(np.asarray(result.per_node), expected[2])

    def test_single_block_never_touches_the_pool(self, monkeypatch):
        def boom(*_args, **_kwargs):
            raise AssertionError("pool must not be used for a single block")

        monkeypatch.setattr(repro.runtime, "run_trials", boom)
        graph = erdos_renyi_graph(60, 0.1, seed=3)  # auto-tunes to one block
        result = triangle_pass(graph, n_jobs=4)
        assert result.n_blocks == 1
        assert result.triangles == reference_count_triangles(graph)

    def test_all_cores_request_resolves(self):
        graph = erdos_renyi_graph(80, 0.1, seed=4)
        result = triangle_pass(graph, block_size=40, n_jobs=0)  # 0 = all cores
        assert result.triangles == reference_count_triangles(graph)

    def test_invalid_n_jobs_rejected(self):
        graph = erdos_renyi_graph(20, 0.2, seed=5)
        with pytest.raises(ValidationError):
            triangle_pass(graph, n_jobs=2.5)
