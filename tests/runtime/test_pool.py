"""Tests for the persistent worker pool behind parallel ``run_trials``.

The contract: parallel runs reuse one process-wide executor across
consecutive ensembles (zero re-fork between them), results stay
bit-identical to serial at any worker count and in either pool mode, and
the pool is lifecycle-managed — resized on a different worker budget,
discarded on breakage, released by :func:`shutdown_pool`, and never
created by serial runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.runtime import (
    POOL_MODE_ENV,
    TrialSpec,
    pool_worker_pids,
    resolve_pool_mode,
    run_trials,
    shutdown_pool,
)
from repro.runtime import engine as engine_module
from repro.stats.kernels import triangle_pass
from repro.graphs.generators import erdos_renyi_graph


def _pid_trial(rng):
    """Report which worker ran the trial."""
    return os.getpid()


def _draw_trial(rng, *, size):
    """Deterministic function of the trial's RNG stream alone."""
    return rng.standard_normal(size).tolist()


def _failing_trial(rng):
    raise RuntimeError("pool trial exploded")


def _specs(fn=_draw_trial, count=6, **params):
    if fn is _draw_trial and not params:
        params = {"size": 3}
    return [TrialSpec(fn=fn, params=params, index=trial) for trial in range(count)]


@pytest.fixture(autouse=True)
def fresh_pool():
    """Isolate every test from pools created by earlier tests."""
    shutdown_pool()
    yield
    shutdown_pool()


class TestPersistentReuse:
    def test_zero_refork_between_consecutive_ensembles(self):
        first = run_trials(_specs(_pid_trial, count=8), seed=1, n_jobs=2)
        executor = engine_module._pool
        pids_after_first = pool_worker_pids()
        second = run_trials(_specs(_pid_trial, count=8), seed=2, n_jobs=2)
        assert engine_module._pool is executor  # same executor object
        assert pool_worker_pids() == pids_after_first  # zero re-fork
        assert set(second.results) <= set(pids_after_first)
        assert set(first.results) <= set(pids_after_first)

    def test_blocked_counting_pass_reuses_the_same_pool(self):
        """`triangle_pass(..., n_jobs>1)` rides the persistent pool too."""
        graph = erdos_renyi_graph(240, 0.06, seed=23)
        first = triangle_pass(graph, block_size=30, n_jobs=2)
        pids = pool_worker_pids()
        assert pids  # the fan-out actually used the persistent pool
        second = triangle_pass(graph, block_size=30, n_jobs=2)
        assert pool_worker_pids() == pids
        assert first.triangles == second.triangles
        np.testing.assert_array_equal(
            np.asarray(first.per_node), np.asarray(second.per_node)
        )

    def test_bit_identical_to_serial_at_any_worker_count(self):
        serial = run_trials(_specs(), seed=11, n_jobs=1)
        for n_jobs in (2, 4):
            parallel = run_trials(_specs(), seed=11, n_jobs=n_jobs)
            assert parallel.results == serial.results

    def test_different_worker_budget_resizes_the_pool(self):
        run_trials(_specs(_pid_trial, count=4), seed=1, n_jobs=2)
        first_executor = engine_module._pool
        run_trials(_specs(_pid_trial, count=4), seed=1, n_jobs=3)
        assert engine_module._pool is not first_executor
        assert engine_module._pool_workers == 3

    def test_serial_runs_never_create_a_pool(self):
        run_trials(_specs(), seed=11, n_jobs=1)
        assert pool_worker_pids() == ()
        assert engine_module._pool is None

    def test_shutdown_is_idempotent_and_pool_recreates(self):
        run_trials(_specs(_pid_trial, count=4), seed=1, n_jobs=2)
        assert pool_worker_pids()
        shutdown_pool()
        shutdown_pool()
        assert pool_worker_pids() == ()
        report = run_trials(_specs(_pid_trial, count=4), seed=1, n_jobs=2)
        assert len(report.results) == 4

    def test_trial_exception_propagates_and_pool_stays_usable(self):
        run_trials(_specs(_pid_trial, count=4), seed=1, n_jobs=2)
        executor = engine_module._pool
        with pytest.raises(RuntimeError, match="pool trial exploded"):
            run_trials(_specs(_failing_trial, count=3), seed=0, n_jobs=2)
        # A raised trial does not break the pool: the next ensemble reuses it.
        report = run_trials(_specs(), seed=11, n_jobs=2)
        assert engine_module._pool is executor
        assert report.results == run_trials(_specs(), seed=11, n_jobs=1).results


class TestEphemeralMode:
    def test_ephemeral_runs_leave_no_persistent_pool(self):
        serial = run_trials(_specs(), seed=11, n_jobs=1)
        parallel = run_trials(_specs(), seed=11, n_jobs=2, pool="ephemeral")
        assert parallel.results == serial.results
        assert engine_module._pool is None

    def test_environment_knob(self, monkeypatch):
        monkeypatch.setenv(POOL_MODE_ENV, "ephemeral")
        assert resolve_pool_mode() == "ephemeral"
        run_trials(_specs(count=3), seed=1, n_jobs=2)
        assert engine_module._pool is None

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(POOL_MODE_ENV, "ephemeral")
        assert resolve_pool_mode("persistent") == "persistent"

    def test_empty_environment_means_default(self, monkeypatch):
        monkeypatch.setenv(POOL_MODE_ENV, "")
        assert resolve_pool_mode() == "persistent"

    def test_invalid_mode_rejected(self, monkeypatch):
        with pytest.raises(ValidationError, match="pool mode"):
            resolve_pool_mode("forever")
        monkeypatch.setenv(POOL_MODE_ENV, "sometimes")
        with pytest.raises(ValidationError, match=POOL_MODE_ENV):
            resolve_pool_mode()

    def test_invalid_mode_rejected_even_on_the_serial_branch(self):
        """A typo'd pool mode must fail where it is written, not later
        when the call site first happens to run parallel."""
        with pytest.raises(ValidationError, match="pool mode"):
            run_trials(_specs(count=2), seed=0, n_jobs=1, pool="persistant")


class TestSignalShutdown:
    """The serve layer's drain path: ``shutdown_pool`` from a signal
    handler must be safe alongside (and after) ordinary calls."""

    def test_shutdown_from_a_signal_handler_is_idempotent(self):
        import signal as signal_module
        import time

        fired = []

        def handler(signum, frame):
            # Exactly what a drain-on-SIGTERM handler does — including
            # the accidental double call.
            shutdown_pool()
            shutdown_pool()
            fired.append(signum)

        previous = signal_module.signal(signal_module.SIGUSR1, handler)
        try:
            report = run_trials(_specs(_pid_trial, count=4), seed=0, n_jobs=2)
            assert pool_worker_pids()  # a live pool to tear down
            os.kill(os.getpid(), signal_module.SIGUSR1)
            deadline = time.monotonic() + 5.0
            while not fired and time.monotonic() < deadline:
                time.sleep(0.01)
            assert fired == [signal_module.SIGUSR1]
            assert pool_worker_pids() == ()
            # A main-thread call after the handler already shut down.
            shutdown_pool()
            # And the pool comes back on demand, fully usable.
            again = run_trials(_specs(_pid_trial, count=4), seed=0, n_jobs=2)
            assert len(again.results) == len(report.results)
            assert pool_worker_pids()
        finally:
            signal_module.signal(signal_module.SIGUSR1, previous)

    def test_concurrent_shutdown_calls_from_threads(self):
        import threading

        run_trials(_specs(count=4), seed=0, n_jobs=2)
        assert pool_worker_pids()
        barrier = threading.Barrier(8)
        errors = []

        def racer():
            barrier.wait()
            try:
                shutdown_pool()
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(repr(exc))

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert pool_worker_pids() == ()
