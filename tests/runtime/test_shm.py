"""Lifecycle tests for the shared-memory CSR handoff (`repro.runtime.shm`).

The contract under test: graphs above the sharing threshold travel to
pool workers as ~100-byte attach tokens instead of pickled edge arrays,
results stay bit-identical to serial runs, and — the part that can rot
silently — **every segment this process publishes is released** by the
time ``run_trials`` returns, on every path: serial (no sharing at all),
persistent pool, ephemeral pool, and mid-run pool self-healing after a
``worker_crash`` fault (PR 7's harness).  A leak would survive process
exit (POSIX shared memory is a named file under ``/dev/shm``), so every
test runs under a fixture that asserts both the module bookkeeping and
the filesystem are clean afterwards.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.generators import star_graph
from repro.graphs.graph import Graph
from repro.runtime import TrialSpec, run_trials, shutdown_pool
from repro.runtime import shm as shm_module
from repro.runtime.shm import (
    AUTO_THRESHOLD_BYTES,
    SHM_ENV,
    attached_segments,
    live_segments,
    resolve_shm_mode,
    share_graph,
    should_share,
)

# 70000 edges = ~1.1 MiB of int64 pairs: above the `auto` threshold.
BIG_EDGES = 70_000
SMALL_GRAPH = Graph(8, [(0, 1), (1, 2), (2, 3)])


def big_graph() -> Graph:
    return star_graph(BIG_EDGES + 1)


def _shm_dir_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return set()


def _drain_parent_attachments():
    """Detach segments this (parent) process attached to in earlier tests.

    Attachments are deliberately process-lifetime on the worker side, but
    between tests they would pollute ``attached_segments()`` counts — and
    forked workers inherit the parent's table — so tests start clean.
    """
    for name, segment in list(shm_module._ATTACHED.items()):
        shm_module._ATTACHED.pop(name, None)
        try:
            segment.close()
        except BufferError:  # a live view still exports the buffer
            pass


@pytest.fixture(autouse=True)
def leak_check():
    """Fail any test that leaves a published segment behind."""
    shutdown_pool()
    _drain_parent_attachments()
    before = _shm_dir_entries()
    assert live_segments() == ()
    yield
    shutdown_pool()
    assert live_segments() == ()
    leaked = _shm_dir_entries() - before
    assert not leaked, f"segments leaked in /dev/shm: {sorted(leaked)}"
    _drain_parent_attachments()


def graph_trial(rng, graph=None, scale=1):
    """Pool-side probe: the graph's shape plus this worker's attachments."""
    u, v = graph.edge_arrays
    checksum = int(u.sum() + scale * v.sum())
    return (graph.n_nodes, graph.n_edges, checksum, len(attached_segments()))


def _specs(graph: Graph, count: int = 4) -> list[TrialSpec]:
    return [
        TrialSpec(fn=graph_trial, params={"graph": graph, "scale": 1}, index=trial)
        for trial in range(count)
    ]


class TestModeResolution:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(SHM_ENV, raising=False)
        assert resolve_shm_mode() == "auto"
        monkeypatch.setenv(SHM_ENV, "")
        assert resolve_shm_mode() == "auto"

    def test_environment_knob(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "off")
        assert resolve_shm_mode() == "off"
        assert resolve_shm_mode("on") == "on"  # argument beats environment

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValidationError, match="shared-memory mode"):
            resolve_shm_mode("mmap")
        monkeypatch.setenv(SHM_ENV, "yes")
        with pytest.raises(ValidationError, match=SHM_ENV):
            resolve_shm_mode()

    def test_should_share_thresholds(self):
        big = big_graph()
        assert 2 * 8 * big.n_edges >= AUTO_THRESHOLD_BYTES
        assert should_share(big, "auto")
        assert not should_share(SMALL_GRAPH, "auto")
        assert should_share(SMALL_GRAPH, "on")
        assert not should_share(big, "off")
        assert not should_share(Graph(4), "on")  # empty: nothing to map


class TestShareGraphLifecycle:
    def test_segment_published_and_released(self):
        graph = big_graph()
        with share_graph(graph, "on") as shared:
            assert shared is graph
            assert graph._shm is not None
            name, n_nodes, n_edges = graph._shm
            assert (n_nodes, n_edges) == (graph.n_nodes, graph.n_edges)
            assert live_segments() == (name,)
        assert graph._shm is None
        assert live_segments() == ()

    def test_below_threshold_is_untouched(self):
        with share_graph(SMALL_GRAPH, "auto"):
            assert SMALL_GRAPH._shm is None
            assert live_segments() == ()

    def test_nested_share_is_a_no_op(self):
        graph = big_graph()
        with share_graph(graph, "on"):
            first = graph._shm
            with share_graph(graph, "on"):
                assert graph._shm == first
                assert live_segments() == (first[0],)
            # The inner exit must not tear down the outer session.
            assert graph._shm == first
            assert live_segments() == (first[0],)

    def test_pickle_reduces_to_token_and_roundtrips(self):
        graph = big_graph()
        plain = len(pickle.dumps(graph))
        with share_graph(graph, "on"):
            payload = pickle.dumps(graph)
            assert len(payload) < 512 < plain
            clone = pickle.loads(payload)
            assert clone._shm is None  # tokens never propagate
            assert clone.n_edges == graph.n_edges
            for got, want in zip(clone.edge_arrays, graph.edge_arrays):
                np.testing.assert_array_equal(got, want)
            # Re-pickling an attached clone ships the arrays by value.
            assert len(pickle.dumps(clone)) >= plain // 2

    def test_exception_inside_session_still_releases(self):
        graph = big_graph()
        with pytest.raises(RuntimeError, match="boom"):
            with share_graph(graph, "on"):
                assert live_segments() != ()
                raise RuntimeError("boom")
        assert graph._shm is None
        assert live_segments() == ()


class TestEngineIntegration:
    def test_serial_runs_never_share(self):
        report = run_trials(_specs(big_graph()), seed=0, n_jobs=1)
        # Serial trials see the original in-process graph: no attachments.
        assert [r[3] for r in report.results] == [0, 0, 0, 0]

    def test_pool_run_attaches_and_releases(self):
        graph = big_graph()
        serial = run_trials(_specs(graph), seed=0, n_jobs=1)
        pooled = run_trials(_specs(graph), seed=0, n_jobs=2)
        # Bit-identical results; every worker saw exactly one attachment.
        assert [r[:3] for r in pooled.results] == [r[:3] for r in serial.results]
        assert all(r[3] == 1 for r in pooled.results)
        assert graph._shm is None

    def test_pool_run_with_sharing_off(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "off")
        report = run_trials(_specs(big_graph()), seed=0, n_jobs=2)
        assert all(r[3] == 0 for r in report.results)

    def test_small_graph_forced_on(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "on")
        report = run_trials(_specs(SMALL_GRAPH), seed=0, n_jobs=2)
        assert all(r[3] == 1 for r in report.results)
        assert all(r[1] == SMALL_GRAPH.n_edges for r in report.results)

    def test_ephemeral_pool_releases(self):
        graph = big_graph()
        report = run_trials(_specs(graph), seed=0, n_jobs=2, pool="ephemeral")
        assert all(r[3] == 1 for r in report.results)
        assert graph._shm is None

    def test_distinct_graphs_get_distinct_segments(self):
        first = big_graph()
        second = star_graph(BIG_EDGES + 2)
        specs = [
            TrialSpec(fn=graph_trial, params={"graph": g, "scale": 1}, index=i)
            for i, g in enumerate((first, second, first, second))
        ]
        report = run_trials(specs, seed=0, n_jobs=2)
        sizes = [r[1] for r in report.results]
        assert sizes == [BIG_EDGES, BIG_EDGES + 1, BIG_EDGES, BIG_EDGES + 1]


class TestPoolSelfHealing:
    def test_worker_crash_does_not_leak_segments(self):
        """PR 7's scenario: a worker dies mid-run, the pool self-heals and
        replacement workers re-attach by name — the parent's exit is
        still the single release point, so nothing leaks."""
        graph = big_graph()
        clean = run_trials(_specs(graph, count=6), seed=0, n_jobs=2)
        report = run_trials(
            _specs(graph, count=6), seed=0, n_jobs=2, backoff=0,
            faults="worker_crash:nth=2",
        )
        assert report.pool_restarts >= 1
        assert [r[:3] for r in report.results] == [r[:3] for r in clean.results]
        assert graph._shm is None
        assert live_segments() == ()


def interrupting_trial(rng, graph=None, boom=False):
    """Raises KeyboardInterrupt in the worker when ``boom`` is set."""
    if boom:
        raise KeyboardInterrupt
    u, v = graph.edge_arrays
    return int(u.sum() + v.sum())


class TestInterruptCleanup:
    """Ctrl-C mid-run must not leak published segments.

    A KeyboardInterrupt surfacing from a worker unwinds ``run_trials``
    through the pool-session ExitStack, which is the single release
    point for shared graphs — the ``leak_check`` fixture then audits
    both the module bookkeeping and ``/dev/shm`` itself.
    """

    def test_keyboard_interrupt_mid_run_releases_segments(self):
        graph = big_graph()
        specs = [
            TrialSpec(
                fn=interrupting_trial,
                params={"graph": graph, "boom": index == 1},
                index=index,
            )
            for index in range(4)
        ]
        with pytest.raises(KeyboardInterrupt):
            run_trials(specs, seed=0, n_jobs=2)
        shutdown_pool()
        assert live_segments() == ()
