"""Tests for the fault-injection harness and the engine's recovery paths.

The contract under test: every recovery mechanism — per-trial retries,
per-attempt timeouts, the ``collect`` failure policy, and pool
self-healing after a worker death — preserves **bit-identity**: a run
with transient faults produces exactly the results of a clean run,
because retried and resubmitted trials re-derive the same
``(root seed, index)`` streams.  The harness itself must be strict (a
typo'd fault spec raises, never silently no-ops) and deterministic
(faults ride in task payloads, so serial and pool runs see the same
injections).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.runtime import (
    FAULT_INJECT_ENV,
    POOL_RESTARTS_ENV,
    TRIAL_BACKOFF_ENV,
    TRIAL_RETRIES_ENV,
    TRIAL_TIMEOUT_ENV,
    FaultPlan,
    InjectedFault,
    TrialCache,
    TrialFailure,
    TrialSpec,
    TrialTimeoutError,
    parse_fault_plan,
    resolve_fault_plan,
    resolve_on_error,
    resolve_pool_restarts,
    resolve_retry_backoff,
    resolve_trial_retries,
    resolve_trial_timeout,
    run_trials,
    shutdown_pool,
)
from concurrent.futures.process import BrokenProcessPool


def _draw_trial(rng, *, size=3):
    """Deterministic function of the trial's RNG stream alone."""
    return rng.standard_normal(size).tolist()


def _marked_trial(rng, *, marker_dir, position, size=3):
    """Like :func:`_draw_trial`, but records each execution on disk.

    One ``exec-<position>-*`` file per execution, created atomically via
    ``mkstemp`` — a cross-process execution counter the resubmission
    tests read back.
    """
    descriptor, _ = tempfile.mkstemp(
        dir=marker_dir, prefix=f"exec-{position:03d}-"
    )
    os.close(descriptor)
    return rng.standard_normal(size).tolist()


def _specs(count=6, fn=_draw_trial, **params):
    return [TrialSpec(fn=fn, params=params or {"size": 3}, index=i) for i in range(count)]


def _executions(marker_dir) -> dict[int, int]:
    counts: dict[int, int] = {}
    for name in os.listdir(marker_dir):
        position = int(name.split("-")[1])
        counts[position] = counts.get(position, 0) + 1
    return counts


@pytest.fixture(autouse=True)
def fresh_pool():
    shutdown_pool()
    yield
    shutdown_pool()


class TestParsing:
    def test_empty_spec_is_the_empty_plan(self):
        assert not parse_fault_plan("")
        assert parse_fault_plan("").clauses == ()

    def test_all_kinds_parse(self):
        plan = parse_fault_plan(
            "trial_error:index=3:attempts=2; worker_crash:nth=2;"
            "slow_trial:index=5:seconds=30"
        )
        kinds = [clause.kind for clause in plan.clauses]
        assert kinds == ["trial_error", "worker_crash", "slow_trial"]
        assert plan.clauses[0].index == 3 and plan.clauses[0].attempts == 2
        assert plan.clauses[1].nth == 2
        assert plan.clauses[2].seconds == 30.0

    @pytest.mark.parametrize(
        "spec",
        [
            "typo_kind:index=1",
            "trial_error",  # needs index=
            "trial_error:index",  # malformed field
            "trial_error:index=1:index=2",  # duplicate key
            "trial_error:index=x",  # non-integer
            "trial_error:index=-1",  # negative position
            "trial_error:index=1:seconds=5",  # seconds not allowed here
            "slow_trial:index=1",  # needs seconds=
            "slow_trial:index=1:seconds=0",  # must be positive
            "worker_crash:index=1:nth=2",  # exactly one selector
            "worker_crash:attempts=1",  # no selector at all
            "worker_crash:nth=0",  # nth is 1-based
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValidationError, match="fault clause"):
            parse_fault_plan(spec)

    def test_number_errors_keep_their_cause(self):
        with pytest.raises(ValidationError) as info:
            parse_fault_plan("trial_error:index=banana")
        assert isinstance(info.value.__cause__, ValueError)

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "trial_error:index=1")
        plan = resolve_fault_plan()
        assert plan.clauses[0].index == 1
        monkeypatch.delenv(FAULT_INJECT_ENV)
        assert not resolve_fault_plan()

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "trial_error:index=1")
        explicit = parse_fault_plan("slow_trial:index=2:seconds=1")
        assert resolve_fault_plan(explicit) is explicit
        assert resolve_fault_plan("").clauses == ()


class TestTargeting:
    def test_nth_binds_over_pending_not_positions(self):
        plan = parse_fault_plan("worker_crash:nth=2")
        faults = plan.for_pending([3, 5, 7])
        assert set(faults) == {5}
        assert faults[5].crash_submissions == 1

    def test_out_of_range_clauses_are_inert(self):
        plan = parse_fault_plan("worker_crash:nth=9;trial_error:index=40")
        assert plan.for_pending([0, 1]) == {}

    def test_index_must_be_pending_cached_trials_cannot_fault(self):
        plan = parse_fault_plan("trial_error:index=2")
        assert plan.for_pending([0, 1]) == {}
        assert set(plan.for_pending([0, 1, 2])) == {2}

    def test_clauses_on_the_same_trial_merge(self):
        plan = parse_fault_plan(
            "trial_error:index=1:attempts=2;slow_trial:index=1:seconds=4"
        )
        faults = plan.for_pending([0, 1])[1]
        assert faults.error_attempts == 2
        assert faults.slow_attempts == 1
        assert faults.slow_seconds == 4.0


class TestKnobResolution:
    def test_defaults(self, monkeypatch):
        for name in (TRIAL_RETRIES_ENV, TRIAL_TIMEOUT_ENV, TRIAL_BACKOFF_ENV,
                     POOL_RESTARTS_ENV):
            monkeypatch.delenv(name, raising=False)
        assert resolve_trial_retries() == 0
        assert resolve_trial_timeout() is None
        assert resolve_retry_backoff() == pytest.approx(0.05)
        assert resolve_pool_restarts() == 2
        assert resolve_on_error() == "raise"

    def test_environment_values(self, monkeypatch):
        monkeypatch.setenv(TRIAL_RETRIES_ENV, "3")
        monkeypatch.setenv(TRIAL_TIMEOUT_ENV, "1.5")
        monkeypatch.setenv(TRIAL_BACKOFF_ENV, "0")
        monkeypatch.setenv(POOL_RESTARTS_ENV, "5")
        assert resolve_trial_retries() == 3
        assert resolve_trial_timeout() == 1.5
        assert resolve_retry_backoff() == 0.0
        assert resolve_pool_restarts() == 5

    @pytest.mark.parametrize(
        ("resolver", "env"),
        [
            (resolve_trial_retries, TRIAL_RETRIES_ENV),
            (resolve_trial_timeout, TRIAL_TIMEOUT_ENV),
            (resolve_retry_backoff, TRIAL_BACKOFF_ENV),
            (resolve_pool_restarts, POOL_RESTARTS_ENV),
        ],
    )
    def test_bad_environment_values_chain_their_cause(
        self, monkeypatch, resolver, env
    ):
        monkeypatch.setenv(env, "banana")
        with pytest.raises(ValidationError, match=env) as info:
            resolver()
        assert isinstance(info.value.__cause__, ValueError)

    def test_invalid_direct_values(self):
        with pytest.raises(ValidationError):
            resolve_trial_retries(-1)
        with pytest.raises(ValidationError):
            resolve_trial_timeout(0)
        with pytest.raises(ValidationError):
            resolve_retry_backoff(-0.1)
        with pytest.raises(ValidationError):
            resolve_on_error("ignore")

    def test_bad_fault_spec_fails_even_a_serial_run(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "not-a-kind:index=1")
        with pytest.raises(ValidationError, match="fault clause"):
            run_trials(_specs(2), seed=0)


class TestRetries:
    def test_transient_error_heals_bit_identically(self):
        specs = _specs()
        clean = run_trials(specs, seed=0)
        healed = run_trials(
            specs, seed=0, retries=1, backoff=0,
            faults="trial_error:index=3:attempts=1",
        )
        assert healed.results == clean.results
        assert healed.retried == 1 and healed.retried_indices == (3,)
        assert healed.failed == 0 and healed.failed_indices == ()

    def test_raise_policy_propagates_after_exhausted_retries(self):
        with pytest.raises(InjectedFault, match="trial 2"):
            run_trials(
                _specs(), seed=0, retries=1, backoff=0,
                faults="trial_error:index=2:attempts=5",
            )

    def test_collect_policy_records_a_structured_failure(self):
        specs = _specs()
        clean = run_trials(specs, seed=0)
        report = run_trials(
            specs, seed=0, on_error="collect", retries=1, backoff=0,
            faults="trial_error:index=2:attempts=5",
        )
        failure = report.results[2]
        assert isinstance(failure, TrialFailure)
        assert failure.index == 2
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 2
        assert "InjectedFault" in failure.traceback
        assert failure.elapsed >= 0.0
        assert "failed after 2 attempt(s)" in str(failure)
        assert report.failed == 1 and report.failed_indices == (2,)
        assert report.retried_indices == (2,)
        # Every surviving trial is untouched by its neighbour's failure.
        for position in (0, 1, 3, 4, 5):
            assert report.results[position] == clean.results[position]

    def test_deterministic_backoff_schedule(self, monkeypatch):
        import repro.runtime.engine as engine_module

        sleeps: list[float] = []
        monkeypatch.setattr(engine_module.time, "sleep", sleeps.append)
        run_trials(
            _specs(2), seed=0, retries=3, backoff=0.1, on_error="collect",
            faults="trial_error:index=0:attempts=4",
        )
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4)]


class TestTimeouts:
    def test_slow_trial_times_out_and_collects(self):
        report = run_trials(
            _specs(3), seed=0, on_error="collect", timeout=0.2, backoff=0,
            faults="slow_trial:index=1:seconds=30",
        )
        failure = report.results[1]
        assert isinstance(failure, TrialFailure)
        assert failure.error_type == "TrialTimeoutError"

    def test_timed_out_attempt_retries_bit_identically(self):
        specs = _specs()
        clean = run_trials(specs, seed=0)
        healed = run_trials(
            specs, seed=0, timeout=0.2, retries=1, backoff=0,
            faults="slow_trial:index=1:seconds=30",  # first attempt only
        )
        assert healed.results == clean.results
        assert healed.retried_indices == (1,)

    def test_raise_policy_propagates_the_timeout(self):
        with pytest.raises(TrialTimeoutError, match="0.2s"):
            run_trials(
                _specs(2), seed=0, timeout=0.2, backoff=0,
                faults="slow_trial:index=0:seconds=30",
            )


class TestSerialCrashInertia:
    def test_worker_crash_is_a_no_op_without_workers(self):
        specs = _specs()
        clean = run_trials(specs, seed=0)
        report = run_trials(specs, seed=0, faults="worker_crash:nth=1")
        assert report.results == clean.results
        assert report.pool_restarts == 0


class TestCacheInteraction:
    def test_faults_cannot_target_cached_trials(self, tmp_path):
        specs = _specs()
        cache = TrialCache(tmp_path / "cache")
        first = run_trials(specs, seed=0, cache=cache)
        rerun = run_trials(
            specs, seed=0, cache=cache, faults="trial_error:index=2:attempts=9",
        )
        assert rerun.executed == 0 and rerun.cached == len(specs)
        assert rerun.results == first.results
        assert rerun.failed == 0


class TestPoolSelfHealing:
    def test_worker_death_resubmits_only_lost_trials(self, tmp_path):
        """The satellite scenario: cache hits + completed results survive
        a worker crash; only the lost in-flight trials are resubmitted."""
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        # Explicit per-trial seeds so a 3-trial warm-up run produces the
        # same cache keys as the 6-trial chaos batch.
        children = np.random.SeedSequence(0).spawn(6)
        specs = [
            TrialSpec(
                fn=_marked_trial,
                params={"marker_dir": str(marker_dir), "position": i},
                index=i,
                seed=children[i],
            )
            for i in range(6)
        ]
        clean = run_trials(specs, seed=0)  # serial, uncached reference
        for name in os.listdir(marker_dir):
            os.unlink(marker_dir / name)

        cache = TrialCache(tmp_path / "cache")
        warmup = run_trials(specs[:3], seed=0, cache=cache)
        assert warmup.executed == 3
        for name in os.listdir(marker_dir):
            os.unlink(marker_dir / name)

        report = run_trials(
            specs, seed=0, cache=cache, n_jobs=2, backoff=0,
            faults="worker_crash:nth=2",
        )
        assert report.cached == 3 and report.cached_indices == (0, 1, 2)
        assert report.pool_restarts == 1
        assert report.failed == 0 and report.retried == 0
        # Bit-identity: the healed parallel run matches the clean serial
        # run everywhere, cache hits and resubmissions alike.
        assert report.results == clean.results

        executions = _executions(marker_dir)
        # Cached trials never re-executed...
        assert all(position >= 3 for position in executions), executions
        # ...and no pending trial ran more than twice (once before the
        # breakage, at most once as a resubmission).  The crash trial
        # itself dies before marking, so 1 execution = its resubmission.
        assert set(executions) == {3, 4, 5}
        assert all(1 <= count <= 2 for count in executions.values()), executions

    def test_restart_budget_exhaustion_surfaces_the_breakage(self):
        with pytest.raises(BrokenProcessPool):
            run_trials(
                _specs(), seed=0, n_jobs=2, backoff=0, pool_restarts=1,
                faults="worker_crash:nth=1:attempts=9",
            )

    def test_zero_budget_disables_self_healing(self):
        with pytest.raises(BrokenProcessPool):
            run_trials(
                _specs(), seed=0, n_jobs=2, backoff=0, pool_restarts=0,
                faults="worker_crash:nth=1",
            )

    def test_ephemeral_pools_self_heal_too(self):
        specs = _specs()
        clean = run_trials(specs, seed=0)
        report = run_trials(
            specs, seed=0, n_jobs=2, pool="ephemeral", backoff=0,
            faults="worker_crash:nth=3",
        )
        assert report.results == clean.results
        assert report.pool_restarts == 1

    def test_parallel_faulted_run_matches_clean_serial_run(self):
        """Transient error + worker crash together, healed in parallel."""
        specs = _specs()
        clean = run_trials(specs, seed=0)
        report = run_trials(
            specs, seed=0, n_jobs=2, retries=1, backoff=0,
            faults="trial_error:index=0:attempts=1;worker_crash:nth=2",
        )
        assert report.results == clean.results
        assert report.pool_restarts == 1
        assert report.retried_indices == (0,)
        assert report.failed == 0


class TestServeFaultGrammar:
    """The serve-side clauses: same strictness, request-order targeting."""

    def test_empty_spec_is_falsy(self):
        from repro.runtime import parse_serve_fault_plan
        from repro.runtime.faults import NO_REQUEST_FAULTS

        plan = parse_serve_fault_plan("")
        assert not plan
        assert plan.for_request(1) == NO_REQUEST_FAULTS

    def test_all_three_kinds_parse(self):
        from repro.runtime import parse_serve_fault_plan
        from repro.runtime.faults import NO_REQUEST_FAULTS

        plan = parse_serve_fault_plan(
            "slow_request:nth=2:seconds=0.5;handler_error:nth=3;"
            "pool_breakage:nth=4:attempts=2"
        )
        assert plan.for_request(1) == NO_REQUEST_FAULTS
        assert plan.for_request(2).slow_seconds == 0.5
        assert plan.for_request(3).error
        assert plan.for_request(4).crash_submissions == 2

    def test_clauses_on_the_same_request_merge(self):
        from repro.runtime import parse_serve_fault_plan

        plan = parse_serve_fault_plan(
            "slow_request:nth=1:seconds=0.2;handler_error:nth=1;"
            "slow_request:nth=1:seconds=0.1"
        )
        faults = plan.for_request(1)
        assert faults.error
        assert faults.slow_seconds == 0.2

    def test_trial_kinds_are_rejected_with_serve_examples(self):
        from repro.runtime import parse_serve_fault_plan

        with pytest.raises(ValidationError) as excinfo:
            parse_serve_fault_plan("worker_crash:nth=1")
        message = str(excinfo.value)
        assert "slow_request" in message
        assert "worker_crash:nth=1" in message

    def test_slow_request_requires_seconds(self):
        from repro.runtime import parse_serve_fault_plan

        with pytest.raises(ValidationError, match="seconds="):
            parse_serve_fault_plan("slow_request:nth=1")

    def test_nth_is_mandatory(self):
        from repro.runtime import parse_serve_fault_plan

        with pytest.raises(ValidationError, match="nth="):
            parse_serve_fault_plan("handler_error")

    def test_unknown_keys_rejected_per_kind(self):
        from repro.runtime import parse_serve_fault_plan

        with pytest.raises(ValidationError, match="seconds"):
            parse_serve_fault_plan("handler_error:nth=1:seconds=2")

    def test_environment_resolution(self, monkeypatch):
        from repro.runtime import SERVE_FAULT_INJECT_ENV, resolve_serve_fault_plan

        monkeypatch.setenv(SERVE_FAULT_INJECT_ENV, "handler_error:nth=7")
        plan = resolve_serve_fault_plan()
        assert plan.for_request(7).error

    def test_argument_beats_environment(self, monkeypatch):
        from repro.runtime import SERVE_FAULT_INJECT_ENV, resolve_serve_fault_plan

        monkeypatch.setenv(SERVE_FAULT_INJECT_ENV, "handler_error:nth=7")
        plan = resolve_serve_fault_plan("slow_request:nth=1:seconds=1")
        assert not plan.for_request(7).error
        assert plan.for_request(1).slow_seconds == 1.0
